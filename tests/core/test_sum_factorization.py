"""Tests of the sum-factorized tensor kernels against direct evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.basis import LagrangeBasis1D
from repro.core.quadrature import gauss, tensor_points
from repro.core.sum_factorization import TensorProductKernel, apply_1d


def eval_nodal_3d(u, nodes, pts):
    """Direct (slow) evaluation of a tensor-product Lagrange interpolant at
    arbitrary points; reference for the fast kernels.  ``u`` has layout
    (z, y, x)."""
    basis = LagrangeBasis1D(len(nodes) - 1, nodes=nodes)
    lx = basis.values(pts[:, 0])
    ly = basis.values(pts[:, 1])
    lz = basis.values(pts[:, 2])
    return np.einsum("zyx,qx,qy,qz->q", u, lx, ly, lz)


def grad_nodal_3d(u, nodes, pts):
    basis = LagrangeBasis1D(len(nodes) - 1, nodes=nodes)
    lx, ly, lz = (basis.values(pts[:, i]) for i in range(3))
    dx, dy, dz = (basis.derivatives(pts[:, i]) for i in range(3))
    g0 = np.einsum("zyx,qx,qy,qz->q", u, dx, ly, lz)
    g1 = np.einsum("zyx,qx,qy,qz->q", u, lx, dy, lz)
    g2 = np.einsum("zyx,qx,qy,qz->q", u, lx, ly, dz)
    return np.stack([g0, g1, g2])


class TestApply1D:
    def test_matches_einsum_all_dims(self):
        rng = np.random.default_rng(1)
        u = rng.standard_normal((4, 3, 3, 3))
        M = rng.standard_normal((5, 3))
        assert np.allclose(apply_1d(M, u, 0), np.einsum("qx,czyx->czyq", M, u))
        assert np.allclose(apply_1d(M, u, 1), np.einsum("qy,czyx->czqx", M, u))
        assert np.allclose(apply_1d(M, u, 2), np.einsum("qz,czyx->cqyx", M, u))

    def test_no_batch_axis(self):
        rng = np.random.default_rng(2)
        u = rng.standard_normal((3, 3, 3))
        M = rng.standard_normal((2, 3))
        assert apply_1d(M, u, 1).shape == (3, 2, 3)


@pytest.mark.parametrize("k", [1, 2, 3, 4])
@pytest.mark.parametrize("use_even_odd", [False, True])
class TestCellKernels:
    def _setup(self, k, use_even_odd, ncells=3, seed=0):
        kern = TensorProductKernel(k, use_even_odd=use_even_odd)
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((ncells, k + 1, k + 1, k + 1))
        pts = tensor_points(gauss(kern.n_q_points), 3)
        nodes = kern.shape.basis.nodes
        return kern, u, pts, nodes

    def test_values_match_direct(self, k, use_even_odd):
        kern, u, pts, nodes = self._setup(k, use_even_odd)
        fast = kern.values(u)
        for c in range(u.shape[0]):
            direct = eval_nodal_3d(u[c], nodes, pts)
            assert np.allclose(fast[c].ravel(), direct, atol=1e-11)

    def test_gradients_match_direct(self, k, use_even_odd):
        kern, u, pts, nodes = self._setup(k, use_even_odd)
        fast = kern.gradients(u)
        nq = kern.n_q_points
        for c in range(u.shape[0]):
            direct = grad_nodal_3d(u[c], nodes, pts)
            assert np.allclose(fast[c].reshape(3, -1), direct, atol=1e-10)

    def test_values_and_gradients_consistent(self, k, use_even_odd):
        kern, u, _, _ = self._setup(k, use_even_odd)
        v, g = kern.values_and_gradients(u)
        assert np.allclose(v, kern.values(u))
        assert np.allclose(g, kern.gradients(u))

    def test_integrate_values_is_transpose(self, k, use_even_odd):
        """<I^T q, u> == <q, I u> for all q, u (adjoint identity)."""
        kern, u, _, _ = self._setup(k, use_even_odd, ncells=2)
        rng = np.random.default_rng(7)
        q = rng.standard_normal((2, kern.n_q_points) * 1 + (kern.n_q_points,) * 2)
        q = rng.standard_normal((2,) + (kern.n_q_points,) * 3)
        lhs = np.sum(kern.integrate_values(q) * u)
        rhs = np.sum(q * kern.values(u))
        assert np.isclose(lhs, rhs, rtol=1e-11)

    def test_integrate_gradients_is_transpose(self, k, use_even_odd):
        kern, u, _, _ = self._setup(k, use_even_odd, ncells=2)
        rng = np.random.default_rng(8)
        q = rng.standard_normal((2, 3) + (kern.n_q_points,) * 3)
        lhs = np.sum(kern.integrate_gradients(q) * u)
        rhs = np.sum(q * kern.gradients(u))
        assert np.isclose(lhs, rhs, rtol=1e-11)

    def test_mass_integral_of_one(self, k, use_even_odd):
        """integrate(1 * w_q) over the reference cell gives nodal weights
        that sum to the cell volume 1."""
        kern, _, _, _ = self._setup(k, use_even_odd)
        q = np.broadcast_to(kern.quadrature_weights, (1,) + (kern.n_q_points,) * 3)
        nodal = kern.integrate_values(np.array(q))
        assert np.isclose(nodal.sum(), 1.0)


@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("face", range(6))
class TestFaceKernels:
    def test_face_values_match_direct(self, k, face):
        kern = TensorProductKernel(k)
        rng = np.random.default_rng(3)
        u = rng.standard_normal((2, k + 1, k + 1, k + 1))
        d, s = divmod(face, 2)
        qpts1d = gauss(kern.n_q_points).points
        # build the 3D points of this face: coordinate d fixed at s
        fv = kern.face_values(u, face)
        nq = kern.n_q_points
        nodes = kern.shape.basis.nodes
        # face array axes are remaining dims in descending order
        rem = [dd for dd in (2, 1, 0) if dd != d]  # array axis order
        for c in range(2):
            for a in range(nq):
                for b in range(nq):
                    coord = [0.0, 0.0, 0.0]
                    coord[d] = float(s)
                    coord[rem[0]] = qpts1d[a]
                    coord[rem[1]] = qpts1d[b]
                    direct = eval_nodal_3d(u[c], nodes, np.array([coord]))
                    assert np.isclose(fv[c, a, b], direct[0], atol=1e-11)

    def test_face_integrate_adjoint(self, k, face):
        kern = TensorProductKernel(k)
        rng = np.random.default_rng(4)
        u = rng.standard_normal((2, k + 1, k + 1, k + 1))
        q = rng.standard_normal((2, kern.n_q_points, kern.n_q_points))
        lhs = np.sum(kern.face_integrate_values(q, face) * u)
        rhs = np.sum(q * kern.face_values(u, face))
        assert np.isclose(lhs, rhs, rtol=1e-11)

    def test_face_normal_derivative_adjoint(self, k, face):
        kern = TensorProductKernel(k)
        rng = np.random.default_rng(5)
        u = rng.standard_normal((2, k + 1, k + 1, k + 1))
        q = rng.standard_normal((2, kern.n_q_points, kern.n_q_points))
        lhs = np.sum(kern.face_integrate_normal_derivative(q, face) * u)
        rhs = np.sum(q * kern.face_normal_derivative(u, face))
        assert np.isclose(lhs, rhs, rtol=1e-11)

    def test_face_normal_derivative_of_linear(self, k, face):
        """d/dx_d of the coordinate function x_d is 1 on every face."""
        kern = TensorProductKernel(k)
        d, s = divmod(face, 2)
        nodes = kern.shape.basis.nodes
        n = k + 1
        # nodal coefficients of f(x) = x_d
        grids = np.meshgrid(nodes, nodes, nodes, indexing="ij")  # x, y, z
        f = grids[d].transpose(2, 1, 0)[None]  # layout (1, z, y, x)
        deriv = kern.face_normal_derivative(f, face)
        assert np.allclose(deriv, 1.0, atol=1e-11)


@settings(deadline=None, max_examples=20)
@given(
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_even_odd_path_matches_dense_path(k, seed):
    """Property: the Flop-optimized even-odd kernels agree with the dense
    kernels to machine precision for every degree and random input."""
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((2, k + 1, k + 1, k + 1))
    dense = TensorProductKernel(k, use_even_odd=False)
    eo = TensorProductKernel(k, use_even_odd=True)
    assert np.allclose(dense.values(u), eo.values(u), atol=1e-12)
    assert np.allclose(dense.gradients(u), eo.gradients(u), atol=1e-12)
    q = rng.standard_normal((2, 3) + (k + 1,) * 3)
    assert np.allclose(dense.integrate_gradients(q), eo.integrate_gradients(q), atol=1e-12)
