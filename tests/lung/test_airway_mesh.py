"""Tests of the hex-only airway mesh generator and the coupled
ventilation simulation."""

import numpy as np
import pytest

from repro.lung import (
    INLET_ID,
    OUTLET_ID_START,
    LungVentilationSimulation,
    airway_tree_mesh,
    grow_airway_tree,
)
from repro.mesh.connectivity import build_connectivity
from repro.mesh.hexmesh import trilinear_jacobian
from repro.ns.solver import SolverSettings
from repro.robustness import RunConfig


def all_jacobians_positive(mesh):
    ref = np.array([[x, y, z] for z in (0.0, 1.0) for y in (0.0, 1.0) for x in (0.0, 1.0)])
    for c in range(mesh.n_cells):
        if np.linalg.det(trilinear_jacobian(mesh.cell_corners(c), ref)).min() <= 0:
            return False
    return True


class TestAirwayMesh:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_valid_watertight_mesh(self, g):
        lm = airway_tree_mesh(grow_airway_tree(g, seed=0))
        mesh = lm.forest.coarse
        assert all_jacobians_positive(mesh)
        conn = build_connectivity(lm.forest)
        conf = conn.n_interior_faces - conn.n_hanging_faces
        slots = 2 * conf + conn.n_hanging_faces + conn.n_hanging_faces // 4 + conn.n_boundary_faces
        assert slots == 6 * mesh.n_cells

    def test_outlet_ids_unique_and_complete(self):
        lm = airway_tree_mesh(grow_airway_tree(3, seed=1))
        assert len(lm.outlet_ids) == 8
        assert len(set(lm.outlet_ids)) == 8
        assert min(lm.outlet_ids) == OUTLET_ID_START

    def test_all_openings_present_in_connectivity(self):
        lm = airway_tree_mesh(grow_airway_tree(2, seed=0))
        conn = build_connectivity(lm.forest)
        present = {b.boundary_id for b in conn.boundary}
        assert INLET_ID in present
        for bid in lm.outlet_ids:
            assert bid in present
        # each opening consists of exactly 4 quad faces (2x2 duct end)
        for bid in [INLET_ID] + lm.outlet_ids:
            assert sum(b.n_faces for b in conn.boundary if b.boundary_id == bid) == 4

    def test_upper_airway_refinement_adds_hanging_faces(self):
        lm = airway_tree_mesh(
            grow_airway_tree(3, seed=0),
            refine_upper_generations=1,
            max_refine_generation=1,
        )
        conn = build_connectivity(lm.forest)
        assert conn.n_hanging_faces > 0
        assert lm.forest.max_level >= 1

    def test_cell_counts_scale_with_generations(self):
        n3 = airway_tree_mesh(grow_airway_tree(3, seed=0)).forest.n_cells
        n5 = airway_tree_mesh(grow_airway_tree(5, seed=0)).forest.n_cells
        assert n5 > 3 * n3


class TestLungVentilationSimulation:
    @pytest.fixture(scope="class")
    def sim(self):
        # tiny g=1 lung (1 bifurcation, 2 outlets) for a quick coupled run
        return LungVentilationSimulation(RunConfig(
            generations=1,
            degree=2,
            solver=SolverSettings(solver_tolerance=1e-4, cfl=0.3),
        ))

    def test_construction(self, sim):
        assert sim.lung.n_outlets == 2
        assert sim.windkessels.n_outlets == 2
        assert sim.solver.pressure_dirichlet  # inlet + outlets

    def test_inhalation_fills_compartments(self, sim):
        """A few time steps of pressure-driven inhalation must push
        volume into the windkessel compartments."""
        for _ in range(12):
            sim.step()
        assert sim.time > 0
        assert sim.tidal_volume_delivered() > 0
        assert sim._inlet_flow > 0  # air flows into the patient

    def test_outlet_pressures_rise_with_volume(self, sim):
        p0 = sim.windkessels.peep
        assert sim.windkessels.outlet_pressure(0) > p0
