"""Tests of the batched ensemble lung driver: one solver setup, N
parameter sets.  E=1 must be bitwise identical to the scalar
:class:`LungVentilationSimulation`; E>1 members must evolve
independently (matching per-member sequential runs to solver
tolerance) while sharing the time step."""

import dataclasses

import numpy as np
import pytest

from repro.lung import EnsembleLungSimulation, LungVentilationSimulation
from repro.lung.ensemble import MEMBER_VARIABLE_FIELDS
from repro.lung.ventilator import VentilationSettings
from repro.ns.solver import SolverSettings
from repro.robustness import RunConfig


def quick_config(**overrides):
    base = RunConfig(
        generations=1, degree=2, seed=0,
        solver=SolverSettings(solver_tolerance=1e-6, cfl=0.3),
    )
    return dataclasses.replace(base, **overrides) if overrides else base


class TestConstruction:
    def test_needs_members(self):
        with pytest.raises(ValueError, match="at least one"):
            EnsembleLungSimulation([])

    def test_shared_fields_enforced(self):
        with pytest.raises(ValueError, match="shared field"):
            EnsembleLungSimulation([
                quick_config(), quick_config(degree=3),
            ])

    def test_member_variable_fields_allowed(self):
        sim = EnsembleLungSimulation([
            quick_config(),
            quick_config(windkessel_resistance_scale=1.5),
            quick_config(
                ventilation=VentilationSettings(dp_initial=900.0)),
        ])
        assert sim.n_members == 3
        assert sim.solver.velocity.shape == (3, sim.solver.dof_u.n_dofs)
        assert "windkessel_resistance_scale" in MEMBER_VARIABLE_FIELDS


class TestE1Bitwise:
    def test_single_member_matches_scalar_simulation(self):
        scalar = LungVentilationSimulation(quick_config())
        ensemble = EnsembleLungSimulation([quick_config()])
        for _ in range(3):
            s_stats = scalar.step()
            e_stats = ensemble.step()
            assert e_stats.dt == s_stats.dt
        assert np.array_equal(ensemble.solver.velocity[0],
                              scalar.solver.velocity)
        assert np.array_equal(ensemble.member_velocity(0),
                              scalar.solver.velocity)
        assert np.array_equal(ensemble.member_pressure(0),
                              scalar.solver.pressure)
        for c_e, c_s in zip(ensemble.windkessels[0].compartments,
                            scalar.windkessels.compartments):
            assert c_e.volume == c_s.volume
        assert ensemble.tidal_volume_delivered()[0] == \
            scalar.tidal_volume_delivered()


class TestMemberIndependence:
    E_CONFIGS = [
        dict(),
        dict(windkessel_resistance_scale=2.0,
             windkessel_compliance_scale=0.5),
        dict(ventilation=VentilationSettings(dp_initial=1200.0)),
    ]

    def test_members_match_sequential_runs(self):
        configs = [quick_config(**kw) for kw in self.E_CONFIGS]
        ensemble = EnsembleLungSimulation(configs)
        dt = 2e-4  # fixed step so batched/sequential share the path
        for _ in range(2):
            stats = ensemble.step(dt)
        assert stats.member_cfl is not None
        assert len(stats.member_cfl) == 3
        assert stats.member_pressure_iterations is not None

        for e, cfg in enumerate(configs):
            seq = LungVentilationSimulation(cfg)
            for _ in range(2):
                seq.step(dt)
            ref = seq.solver.velocity
            scale = max(np.abs(ref).max(), 1e-30)
            # batched CG iterates until ALL members converge, so the
            # agreement is at solver-tolerance level, not bitwise
            np.testing.assert_allclose(
                ensemble.member_velocity(e), ref,
                rtol=0, atol=1e-5 * scale, err_msg=f"member {e}",
            )
            np.testing.assert_allclose(
                ensemble.tidal_volume_delivered()[e],
                seq.tidal_volume_delivered(), rtol=1e-5,
            )

    def test_members_actually_differ(self):
        configs = [quick_config(**kw) for kw in self.E_CONFIGS]
        ensemble = EnsembleLungSimulation(configs)
        for _ in range(2):
            ensemble.step(2e-4)
        v0 = ensemble.member_velocity(0)
        v2 = ensemble.member_velocity(2)  # higher driving pressure
        assert not np.allclose(v0, v2, rtol=1e-3, atol=1e-12)

    def test_member_records(self):
        configs = [quick_config(**kw) for kw in self.E_CONFIGS[:2]]
        ensemble = EnsembleLungSimulation(configs)
        ensemble.step(2e-4)
        recs = ensemble.member_records()
        assert [r.member for r in recs] == [0, 1]
        assert recs[1].config.windkessel_resistance_scale == 2.0
        assert all(r.tidal_volume >= 0 for r in recs)


class TestAdaptiveSteppingShared:
    def test_shared_dt_from_fastest_member(self):
        configs = [
            quick_config(),
            quick_config(
                ventilation=VentilationSettings(dp_initial=1500.0)),
        ]
        ensemble = EnsembleLungSimulation(configs)
        s1 = ensemble.step()  # dt_max-capped startup step
        s2 = ensemble.step()  # CFL-adaptive from the batched state
        assert s2.dt > 0
        assert len(s2.member_cfl) == 2
        # the shared step is set by the worst (fastest) member
        assert s2.cfl == pytest.approx(max(s2.member_cfl))
