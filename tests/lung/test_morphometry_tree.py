"""Tests of airway morphometry, resistance models, and tree growth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lung.morphometry import (
    LITER,
    airway_dimensions,
    n_airways,
    poiseuille_resistance,
    truncated_tree_resistance,
)
from repro.lung.tree import grow_airway_tree


class TestMorphometry:
    def test_trachea_dimensions(self):
        d = airway_dimensions(0)
        assert 0.015 < d.diameter < 0.022  # ~18 mm adult trachea
        assert 0.10 < d.length < 0.13

    def test_monotone_diameter_decrease(self):
        diams = [airway_dimensions(g).diameter for g in range(17)]
        assert all(d1 > d2 for d1, d2 in zip(diams, diams[1:]))

    def test_extrapolation_beyond_table(self):
        d24 = airway_dimensions(24)
        d25 = airway_dimensions(25)
        assert np.isclose(d25.diameter / d24.diameter, 2 ** (-1 / 3))

    def test_negative_generation_raises(self):
        with pytest.raises(ValueError):
            airway_dimensions(-1)

    def test_n_airways(self):
        assert n_airways(0) == 1
        assert n_airways(11) == 2048

    def test_total_cross_section_grows(self):
        """The accumulated cross-section increases with generation —
        the reason low generations limit the CFL step (Section 3.3)."""
        area = lambda g: n_airways(g) * np.pi * airway_dimensions(g).radius ** 2
        assert area(16) > area(8) > area(4)


class TestResistance:
    def test_poiseuille_formula(self):
        # R = 128 mu L / (pi d^4)
        R = poiseuille_resistance(0.01, 1.0, mu=1.0)
        assert np.isclose(R, 128.0 / (np.pi * 1e-8))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            poiseuille_resistance(0.0, 1.0)

    def test_subtree_resistance_decreases_with_truncation_depth(self):
        """Resolving more generations in 3D leaves less resistance in the
        lumped model."""
        r5 = truncated_tree_resistance(6, 25)
        r9 = truncated_tree_resistance(10, 25)
        assert r9 > r5  # a *single* deeper subtree has higher resistance

    def test_total_airway_resistance_physiological(self):
        """Airway (tree) resistance from the trachea down should land in
        the physiological sub-kPa.s/l range (~0.05-0.15 kPa s/l)."""
        r = truncated_tree_resistance(0, 25)
        r_kpa_per_lps = r * LITER / 1000.0
        assert 0.01 < r_kpa_per_lps < 0.3

    def test_ordering_of_arguments(self):
        with pytest.raises(ValueError):
            truncated_tree_resistance(10, 5)


class TestTreeGrowth:
    @pytest.mark.parametrize("g", [1, 3, 5])
    def test_counts_complete_dichotomy(self, g):
        tree = grow_airway_tree(g)
        assert tree.n_airways == 2 ** (g + 1) - 1
        assert len(tree.terminal_airways()) == 2**g
        assert tree.n_generations == g

    def test_terminal_count_exceeds_state_of_the_art(self):
        """Section 2.1: the paper resolves 1005 terminals at g = 11; the
        symmetric synthetic tree yields 2048."""
        tree = grow_airway_tree(11)
        assert len(tree.terminal_airways()) == 2048

    def test_parent_child_links(self):
        tree = grow_airway_tree(3)
        for a in tree.airways:
            for c in a.children:
                child = tree.airways[c]
                assert child.parent == a.index
                assert np.allclose(child.start, a.end)
                assert child.generation == a.generation + 1

    def test_directions_normalized(self):
        tree = grow_airway_tree(4, seed=3)
        for a in tree.airways:
            assert np.isclose(np.linalg.norm(a.direction), 1.0)

    def test_children_diverge(self):
        tree = grow_airway_tree(3)
        for a in tree.airways:
            if len(a.children) == 2:
                c1, c2 = (tree.airways[c] for c in a.children)
                assert np.dot(c1.direction, c2.direction) < 0.99

    def test_tree_extends_caudally(self):
        tree = grow_airway_tree(5)
        lo, hi = tree.bounding_box()
        assert hi[2] > tree.trachea.length  # grows beyond the trachea

    def test_cross_section_metric(self):
        tree = grow_airway_tree(6)
        assert tree.total_cross_section(6) > tree.total_cross_section(2)

    def test_invalid_generations(self):
        with pytest.raises(ValueError):
            grow_airway_tree(0)

    @settings(deadline=None, max_examples=5)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_reproducible_given_seed(self, seed):
        t1 = grow_airway_tree(3, seed=seed)
        t2 = grow_airway_tree(3, seed=seed)
        for a, b in zip(t1.airways, t2.airways):
            assert np.allclose(a.direction, b.direction)
            assert a.length == b.length
