"""Tests of the windkessel compartments, ventilator, and tubus model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lung.morphometry import CMH2O, LITER
from repro.lung.ventilator import (
    PressureControlledVentilator,
    TubusModel,
    VentilationSettings,
    expected_tidal_volume,
)
from repro.lung.windkessel import (
    TOTAL_COMPLIANCE,
    TOTAL_RESISTANCE,
    Compartment,
    WindkesselBank,
)


class TestCompartment:
    def test_pressure_components(self):
        c = Compartment(resistance=2.0, compliance=0.5)
        c.advance(flow=1.0, dt=0.1)
        # p = R Q + V/C = 2*1 + 0.1/0.5
        assert np.isclose(c.pressure(), 2.0 + 0.2)

    def test_volume_integration(self):
        c = Compartment(resistance=1.0, compliance=1.0)
        for _ in range(10):
            c.advance(flow=0.5, dt=0.1)
        assert np.isclose(c.volume, 0.5)

    def test_exhalation_reduces_volume(self):
        c = Compartment(resistance=1.0, compliance=1.0, volume=1.0)
        c.advance(flow=-2.0, dt=0.25)
        assert np.isclose(c.volume, 0.5)


class TestWindkesselBank:
    def test_equivalent_lumped_values(self):
        bank = WindkesselBank(terminal_generation=5, n_outlets=32)
        # compliances add in parallel -> total compliance recovered
        assert np.isclose(bank.equivalent_compliance(), TOTAL_COMPLIANCE)
        # equivalent resistance is positive and at least the tissue part
        assert bank.equivalent_resistance() > 0.2 * TOTAL_RESISTANCE * 0.5

    def test_resistance_grows_with_resolved_depth(self):
        """Resolving more generations in 3D leaves a higher per-outlet
        subtree resistance but more outlets in parallel."""
        b5 = WindkesselBank(terminal_generation=5, n_outlets=32)
        b9 = WindkesselBank(terminal_generation=9, n_outlets=512)
        assert b9.compartments[0].resistance > b5.compartments[0].resistance

    def test_time_constant_physiological(self):
        """RC of the respiratory system ~ 0.3-1.5 s (supports the 1:2
        exhalation ratio of the ventilation protocol)."""
        bank = WindkesselBank(terminal_generation=7, n_outlets=128)
        assert 0.02 < bank.time_constant() < 3.0

    def test_outlet_pressure_includes_peep(self):
        bank = WindkesselBank(terminal_generation=3, n_outlets=8, peep=800.0)
        assert bank.outlet_pressure(0) == pytest.approx(800.0)

    def test_advance_validates_flows(self):
        bank = WindkesselBank(terminal_generation=3, n_outlets=8)
        with pytest.raises(ValueError):
            bank.advance([1.0, 2.0], dt=0.1)

    def test_total_volume(self):
        bank = WindkesselBank(terminal_generation=3, n_outlets=4)
        bank.advance([1e-4] * 4, dt=1.0)
        assert np.isclose(bank.total_volume(), 4e-4)

    def test_needs_outlets(self):
        with pytest.raises(ValueError):
            WindkesselBank(terminal_generation=3, n_outlets=0)


class TestTubus:
    def test_quadratic_drop(self):
        t = TubusModel()
        q = 0.5 * LITER / 1.0 * 1000  # 0.5 l/s in m^3/s
        q = 0.5e-3
        dp = t.pressure_drop(q)
        expected = 4.6 * CMH2O * 0.5 + 2.9 * CMH2O * 0.25
        assert np.isclose(dp, expected)

    def test_sign_symmetry(self):
        t = TubusModel()
        assert np.isclose(t.pressure_drop(-1e-3), -t.pressure_drop(1e-3))


class TestVentilator:
    def test_square_wave_timing(self):
        v = PressureControlledVentilator()
        s = v.settings
        assert v.is_inhaling(0.1)
        assert v.is_inhaling(0.99)
        assert not v.is_inhaling(1.01)  # T = 3, I:E = 1:2 -> t_I = 1 s
        assert v.is_inhaling(3.05)  # next cycle

    def test_pressure_levels(self):
        v = PressureControlledVentilator()
        s = v.settings
        assert np.isclose(v.ventilator_pressure(0.5), s.peep + v.dp)
        assert np.isclose(v.ventilator_pressure(2.0), s.peep)

    def test_tracheal_pressure_subtracts_tubus_drop(self):
        v = PressureControlledVentilator()
        p0 = v.tracheal_pressure(0.5, flow=0.0)
        p1 = v.tracheal_pressure(0.5, flow=0.5e-3)
        assert p1 < p0

    def test_controller_converges_on_rc_model(self):
        """Closed loop with the first-order RC lung model reaches the
        tidal-volume target within a few cycles (Section 5.3's controller;
        the paper simulates only the first cycle, we verify convergence)."""
        v = PressureControlledVentilator(
            VentilationSettings(dp_initial=4.0 * CMH2O)
        )
        R = TOTAL_RESISTANCE
        C = TOTAL_COMPLIANCE
        for _ in range(12):
            vt = expected_tidal_volume(v.dp, C, R, v.inhalation_time)
            v.end_of_cycle(vt)
        final_vt = expected_tidal_volume(v.dp, C, R, v.inhalation_time)
        assert abs(final_vt - v.settings.tidal_volume_target) < 0.03 * v.settings.tidal_volume_target

    def test_controller_handles_zero_volume(self):
        v = PressureControlledVentilator()
        dp0 = v.dp
        v.end_of_cycle(0.0)
        assert v.dp > dp0

    @settings(deadline=None, max_examples=20)
    @given(dp0=st.floats(min_value=1.0, max_value=30.0))
    def test_controller_monotone_pressure_update(self, dp0):
        """Under-delivery raises dp, over-delivery lowers it."""
        v = PressureControlledVentilator(
            VentilationSettings(dp_initial=dp0 * CMH2O)
        )
        target = v.settings.tidal_volume_target
        dp_before = v.dp
        v.end_of_cycle(0.5 * target)
        assert v.dp >= dp_before
        v2 = PressureControlledVentilator(
            VentilationSettings(dp_initial=dp0 * CMH2O)
        )
        v2.end_of_cycle(2.0 * target)
        assert v2.dp <= dp0 * CMH2O


class TestExpectedTidalVolume:
    def test_long_inhalation_saturates(self):
        vt = expected_tidal_volume(1000.0, 1e-6, 1e3, t_inhale=100.0)
        assert np.isclose(vt, 1000.0 * 1e-6)

    def test_short_inhalation_linear(self):
        R, C = 1e5, 1e-6
        dt = 1e-4 * R * C
        vt = expected_tidal_volume(1.0, C, R, dt)
        assert np.isclose(vt, dt / R, rtol=1e-3)
