"""Tests of geometric face matching: conforming, hanging, boundary,
orientations."""

import numpy as np
import pytest

from repro.mesh.connectivity import (
    Orientation,
    build_connectivity,
    orient_face_array,
    orient_to_plus,
)
from repro.mesh.generators import bifurcation, box, cylinder, unit_cube
from repro.mesh.octree import Forest


def all_orientations():
    return [
        Orientation(sw, fa, fb)
        for sw in (False, True)
        for fa in (False, True)
        for fb in (False, True)
    ]


class TestOrientation:
    def test_codes_unique(self):
        codes = {o.code for o in all_orientations()}
        assert codes == set(range(8))

    @pytest.mark.parametrize("o", all_orientations())
    def test_inverse_roundtrip_coords(self, o):
        for a, b in [(0, 0), (1, 0), (0, 1), (1, 1), (0.25, 0.75)]:
            ap, bp = o.apply_coords(a, b)
            a2, b2 = o.inverse().apply_coords(ap, bp)
            assert np.isclose(a2, a) and np.isclose(b2, b)

    @pytest.mark.parametrize("o", all_orientations())
    def test_orient_array_roundtrip(self, o):
        rng = np.random.default_rng(o.code)
        arr = rng.standard_normal((2, 4, 4))
        back = orient_to_plus(orient_face_array(arr, o), o)
        assert np.allclose(back, arr)

    @pytest.mark.parametrize("o", all_orientations())
    def test_orient_array_matches_coordinate_map(self, o):
        """orient_face_array must agree with the coordinate map on a
        symmetric lattice."""
        from repro.core.quadrature import gauss

        n = 4
        pts = gauss(n).points
        # plus-frame array: value = f(a', b')
        f = lambda a, b: 2 * a + 7 * b * b  # noqa: E731
        plus = np.array([[f(a, b) for b in pts] for a in pts])
        got = orient_face_array(plus, o)
        for ia in range(n):
            for ib in range(n):
                ap, bp = o.apply_coords(pts[ia], pts[ib])
                assert np.isclose(got[ia, ib], f(ap, bp))


class TestConformingConnectivity:
    def test_unit_cube_boundary_only(self):
        conn = build_connectivity(Forest(unit_cube()))
        assert conn.n_interior_faces == 0
        assert conn.n_boundary_faces == 6

    def test_refined_cube_counts(self):
        conn = build_connectivity(Forest(unit_cube()).refine_all(1))
        assert conn.n_interior_faces == 12
        assert conn.n_boundary_faces == 24
        assert conn.n_hanging_faces == 0

    def test_box_2x1x1(self):
        conn = build_connectivity(Forest(box(subdivisions=(2, 1, 1))))
        assert conn.n_interior_faces == 1
        assert conn.n_boundary_faces == 10
        batch = conn.interior[0]
        # structured mesh: identity orientation, opposite faces
        assert batch.orientation.is_identity
        assert {batch.face_m, batch.face_p} == {0, 1}

    def test_interior_face_count_formula(self):
        n = (3, 2, 2)
        conn = build_connectivity(Forest(box(subdivisions=n)))
        expected = (n[0] - 1) * n[1] * n[2] + n[0] * (n[1] - 1) * n[2] + n[0] * n[1] * (n[2] - 1)
        assert conn.n_interior_faces == expected

    def test_cylinder_mesh_is_watertight(self):
        mesh = cylinder(n_axial=2, smooth=False)
        conn = build_connectivity(Forest(mesh))
        # every face is interior or boundary; Euler-style count:
        # 6 * n_cells = 2 * interior + boundary
        assert 6 * mesh.n_cells == 2 * conn.n_interior_faces + conn.n_boundary_faces
        # inlet and outlet both have 12 faces
        inlet = sum(b.n_faces for b in conn.boundary if b.boundary_id == 1)
        outlet = sum(b.n_faces for b in conn.boundary if b.boundary_id == 2)
        assert inlet == 12 and outlet == 12

    def test_bifurcation_watertight_with_three_openings(self):
        mesh = bifurcation()
        conn = build_connectivity(Forest(mesh))
        assert 6 * mesh.n_cells == 2 * conn.n_interior_faces + conn.n_boundary_faces
        for bid in (1, 2, 3):
            assert sum(b.n_faces for b in conn.boundary if b.boundary_id == bid) == 4


class TestHangingConnectivity:
    def make_hanging_forest(self):
        f = Forest(box(subdivisions=(2, 1, 1)))
        # refine only tree 0 -> 2:1 interface with tree 1
        return f.refine([f.leaves[0]])

    def test_hanging_face_count(self):
        conn = build_connectivity(self.make_hanging_forest())
        assert conn.n_hanging_faces == 4
        # fine side is always the minus side
        for b in conn.interior:
            if b.is_hanging:
                assert b.subface is not None

    def test_hanging_subfaces_distinct(self):
        conn = build_connectivity(self.make_hanging_forest())
        subs = [b.subface for b in conn.interior if b.is_hanging for _ in range(b.n_faces)]
        assert sorted(set(subs)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_boundary_counts_with_hanging(self):
        forest = self.make_hanging_forest()
        conn = build_connectivity(forest)
        # face-slot accounting: every conforming interior face covers 2 cell
        # face slots, each hanging face 1 fine slot, each distinct coarse
        # face (hanging / 4) 1 slot, each boundary face 1 slot
        conforming = conn.n_interior_faces - conn.n_hanging_faces
        slots = 2 * conforming + conn.n_hanging_faces + conn.n_hanging_faces // 4 + conn.n_boundary_faces
        assert 6 * forest.n_cells == slots
        # tree 1 contributes 5 boundary faces, tree 0 children 5 * 4 = 20
        assert conn.n_boundary_faces == 25

    def test_unbalanced_mesh_raises(self):
        f = Forest(box(subdivisions=(2, 1, 1)))
        f = f.refine([f.leaves[0]])
        fine_corner = [
            c for c in f.leaves if c.tree == 0 and (c.i, c.j, c.k) == (1, 0, 0)
        ]
        f = f.refine(fine_corner)  # level-2 cells adjacent to level-0 tree 1
        with pytest.raises(RuntimeError):
            build_connectivity(f)

    def test_mixed_orientation_fraction(self):
        conn_box = build_connectivity(Forest(box(subdivisions=(2, 2, 2))))
        assert conn_box.mixed_orientation_fraction() == 0.0
        mesh = bifurcation()
        conn_bif = build_connectivity(Forest(mesh))
        # the tube-tree junctions introduce rotated faces
        assert conn_bif.mixed_orientation_fraction() >= 0.0
