"""Tests of the coarse hex mesh, generators, and trilinear mapping."""

import numpy as np
import pytest

from repro.mesh.hexmesh import (
    HexMesh,
    face_corner_vertices,
    merge_meshes,
    trilinear,
    trilinear_jacobian,
)
from repro.mesh.generators import box, unit_cube, cylinder, disc_cross_section


class TestTrilinear:
    def test_identity_on_unit_cube(self, rng):
        corners = np.array(
            [[v & 1, (v >> 1) & 1, (v >> 2) & 1] for v in range(8)], dtype=float
        )
        ref = rng.uniform(0, 1, (10, 3))
        assert np.allclose(trilinear(corners, ref), ref)

    def test_affine_map(self, rng):
        A = np.array([[2.0, 0.5, 0.0], [0.0, 1.5, 0.2], [0.1, 0.0, 3.0]])
        b = np.array([1.0, -2.0, 0.5])
        corners = np.array(
            [[v & 1, (v >> 1) & 1, (v >> 2) & 1] for v in range(8)], dtype=float
        )
        mapped = corners @ A.T + b
        ref = rng.uniform(0, 1, (7, 3))
        assert np.allclose(trilinear(mapped, ref), ref @ A.T + b)
        J = trilinear_jacobian(mapped, ref)
        assert np.allclose(J, A[None])

    def test_jacobian_matches_finite_difference(self, rng):
        corners = np.array(
            [[v & 1, (v >> 1) & 1, (v >> 2) & 1] for v in range(8)], dtype=float
        )
        corners += 0.1 * rng.standard_normal((8, 3))
        ref = np.array([[0.3, 0.6, 0.2]])
        J = trilinear_jacobian(corners, ref)[0]
        eps = 1e-6
        for j in range(3):
            dp = ref.copy()
            dm = ref.copy()
            dp[0, j] += eps
            dm[0, j] -= eps
            fd = (trilinear(corners, dp)[0] - trilinear(corners, dm)[0]) / (2 * eps)
            assert np.allclose(J[:, j], fd, atol=1e-8)


class TestHexMesh:
    def test_validation(self):
        with pytest.raises(ValueError):
            HexMesh(np.zeros((4, 2)), np.zeros((1, 8), dtype=int))
        with pytest.raises(ValueError):
            HexMesh(np.zeros((4, 3)), np.zeros((1, 6), dtype=int))
        with pytest.raises(ValueError):
            HexMesh(np.zeros((4, 3)), np.full((1, 8), 9))

    def test_face_corner_vertices_cover_cell(self):
        seen = set()
        for f in range(6):
            fc = face_corner_vertices(f)
            assert fc.shape == (2, 2)
            seen.update(int(v) for v in fc.ravel())
        assert seen == set(range(8))

    def test_face_corner_frame_convention(self):
        # face 0 (normal x, low side): a runs along z, b along y
        fc = face_corner_vertices(0)
        # (a=0,b=0) -> vertex 0; (a=0,b=1) -> +y = vertex 2; (a=1,b=0) -> +z = 4
        assert fc[0][0] == 0 and fc[0][1] == 2 and fc[1][0] == 4 and fc[1][1] == 6

    def test_volume_of_unit_cube(self):
        mesh = unit_cube()
        assert np.isclose(mesh.cell_volume_estimate(0), 1.0)


class TestBoxGenerator:
    def test_counts(self):
        mesh = box(subdivisions=(2, 3, 4))
        assert mesh.n_cells == 24
        assert mesh.n_vertices == 3 * 4 * 5

    def test_total_volume(self):
        mesh = box(lower=(0, 0, 0), upper=(2, 1, 1), subdivisions=(3, 2, 2))
        vol = sum(mesh.cell_volume_estimate(c) for c in range(mesh.n_cells))
        assert np.isclose(vol, 2.0)

    def test_boundary_ids(self):
        mesh = box(subdivisions=(2, 2, 2), boundary_ids={4: 1, 5: 2})
        n_inlet = sum(1 for bid in mesh.boundary_ids.values() if bid == 1)
        n_outlet = sum(1 for bid in mesh.boundary_ids.values() if bid == 2)
        assert n_inlet == 4 and n_outlet == 4

    def test_invalid_subdivisions(self):
        with pytest.raises(ValueError):
            box(subdivisions=(0, 1, 1))

    def test_positive_jacobians(self):
        mesh = box(subdivisions=(2, 2, 2))
        ref = np.array([[0.5, 0.5, 0.5]])
        for c in range(mesh.n_cells):
            J = trilinear_jacobian(mesh.cell_corners(c), ref)[0]
            assert np.linalg.det(J) > 0


class TestMergeMeshes:
    def test_merge_two_boxes_shares_interface(self):
        m1 = box(lower=(0, 0, 0), upper=(1, 1, 1), subdivisions=(1, 1, 1))
        m2 = box(lower=(1, 0, 0), upper=(2, 1, 1), subdivisions=(1, 1, 1))
        merged = merge_meshes([m1, m2])
        assert merged.n_cells == 2
        assert merged.n_vertices == 12  # 16 - 4 shared

    def test_merge_preserves_boundary_ids(self):
        m1 = box(subdivisions=(1, 1, 1), boundary_ids={0: 1})
        m2 = box(lower=(1, 0, 0), upper=(2, 1, 1), subdivisions=(1, 1, 1),
                 boundary_ids={1: 2})
        merged = merge_meshes([m1, m2])
        assert 1 in merged.boundary_ids.values()
        assert 2 in merged.boundary_ids.values()


class TestDiscAndCylinder:
    def test_disc_has_12_quads(self):
        pts, quads, outer = disc_cross_section()
        assert quads.shape == (12, 4)
        assert len(outer) == 8

    def test_disc_quads_positively_oriented(self):
        pts, quads, _ = disc_cross_section()
        for quad in quads:
            p = pts[quad]
            ex = p[1] - p[0]
            ey = p[2] - p[0]
            assert ex[0] * ey[1] - ex[1] * ey[0] > 0  # 2D cross product

    def test_cylinder_counts_and_jacobians(self):
        mesh = cylinder(radius=1.0, length=4.0, n_axial=3, smooth=False)
        assert mesh.n_cells == 36
        ref = np.array([[0.5, 0.5, 0.5]])
        for c in range(mesh.n_cells):
            J = trilinear_jacobian(mesh.cell_corners(c), ref)[0]
            assert np.linalg.det(J) > 0, f"cell {c} inverted"

    def test_cylinder_boundary_ids(self):
        mesh = cylinder(n_axial=3, smooth=False)
        ids = list(mesh.boundary_ids.values())
        assert ids.count(1) == 12 and ids.count(2) == 12

    def test_smooth_cylinder_surface_points_on_radius(self):
        mesh = cylinder(radius=2.0, length=4.0, n_axial=2, smooth=True)
        # ring cells: outer face is local face 3 (y high); sample points there
        ref = np.array([[0.3, 1.0, 0.5], [0.8, 1.0, 0.2]])
        for c in range(4, 12):  # ring cells of the first slice
            pts = mesh.map_geometry(c, ref)
            r = np.hypot(pts[:, 0], pts[:, 1])
            assert np.allclose(r, 2.0, atol=1e-12)

    def test_smooth_cylinder_interior_consistent_across_cells(self):
        """Geometry evaluated from two neighboring cells agrees on the
        shared face (watertightness of the transfinite blend)."""
        mesh = cylinder(radius=1.0, length=2.0, n_axial=2, smooth=True)
        # ring cell 4 and its axial neighbor 16 share the z face
        ref_top = np.array([[0.25, 0.7, 1.0]])
        ref_bot = np.array([[0.25, 0.7, 0.0]])
        p1 = mesh.map_geometry(4, ref_top)
        p2 = mesh.map_geometry(16, ref_bot)
        assert np.allclose(p1, p2, atol=1e-12)

    def test_tapered_cylinder(self):
        mesh = cylinder(radius=1.0, taper_radius=0.5, length=4.0, n_axial=2)
        # outlet slice vertices should lie within radius ~0.5
        outlet_verts = mesh.vertices[-17:]
        r = np.hypot(outlet_verts[:, 0], outlet_verts[:, 1])
        assert r.max() <= 0.5 + 1e-9
