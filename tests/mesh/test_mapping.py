"""Tests of the high-order geometry field and metric terms."""

import numpy as np
import pytest

from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box, cylinder, unit_cube
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest


class TestCellMetrics:
    def test_unit_cube_identity_metrics(self):
        geo = GeometryField(Forest(unit_cube()), degree=2)
        cm = geo.cell_metrics()
        assert np.isclose(cm.jxw.sum(), 1.0)
        eye = np.eye(3)[None, :, :, None, None, None]
        assert np.allclose(cm.jinv_t, np.broadcast_to(eye, cm.jinv_t.shape))
        assert np.allclose(cm.det_j, 1.0)

    def test_refined_cube_volume(self):
        geo = GeometryField(Forest(unit_cube()).refine_all(2), degree=1)
        cm = geo.cell_metrics()
        assert np.isclose(cm.jxw.sum(), 1.0)
        assert np.allclose(cm.det_j, (1 / 4) ** 3)

    def test_stretched_box(self):
        mesh = box(upper=(2.0, 3.0, 0.5))
        geo = GeometryField(Forest(mesh), degree=3)
        cm = geo.cell_metrics()
        assert np.isclose(cm.jxw.sum(), 3.0)
        # J^{-T} diagonal = 1/scale
        assert np.allclose(cm.jinv_t[0, 0, 0], 1 / 2.0)
        assert np.allclose(cm.jinv_t[0, 1, 1], 1 / 3.0)
        assert np.allclose(cm.jinv_t[0, 2, 2], 1 / 0.5)

    def test_quadrature_points_in_physical_space(self):
        mesh = box(lower=(1, 1, 1), upper=(2, 2, 2))
        geo = GeometryField(Forest(mesh), degree=2)
        cm = geo.cell_metrics()
        assert cm.points.min() > 1.0 and cm.points.max() < 2.0

    def test_cylinder_volume_converges_with_degree(self):
        """Volume of the transfinite cylinder approaches pi r^2 L as the
        polynomial geometry degree rises."""
        mesh = cylinder(radius=1.0, length=2.0, n_axial=2, smooth=True)
        exact = np.pi * 2.0
        errors = []
        for k in (1, 2, 4):
            geo = GeometryField(Forest(mesh), degree=k)
            vol = geo.cell_metrics().jxw.sum()
            errors.append(abs(vol - exact) / exact)
        assert errors[1] < 0.3 * errors[0]
        assert errors[2] < 0.2 * errors[1]
        assert errors[2] < 1e-4

    def test_inverted_cell_raises(self):
        mesh = unit_cube()
        mesh.vertices = mesh.vertices.copy()
        # swap two vertices to invert the cell
        mesh.cells = mesh.cells.copy()
        mesh.cells[0, [0, 1]] = mesh.cells[0, [1, 0]]
        geo = GeometryField(Forest(mesh), degree=1)
        with pytest.raises(ValueError, match="Jacobian"):
            geo.cell_metrics()


class TestFaceMetrics:
    def test_box_boundary_normals_and_area(self):
        geo = GeometryField(Forest(box(upper=(2.0, 1.0, 1.0))), degree=2)
        conn = build_connectivity(geo.forest)
        for batch in conn.boundary:
            fm = geo.boundary_metrics(batch)
            d, s = divmod(batch.face, 2)
            expected_n = np.zeros(3)
            expected_n[d] = 1.0 if s == 1 else -1.0
            assert np.allclose(fm.normal, expected_n[None, :, None, None])
            area = fm.jxw.sum()
            assert np.isclose(area, 1.0 if d == 0 else 2.0)

    def test_interior_face_area(self):
        geo = GeometryField(Forest(box(subdivisions=(2, 1, 1))), degree=2)
        conn = build_connectivity(geo.forest)
        fm = geo.face_metrics(conn.interior[0])
        assert np.isclose(fm.jxw.sum(), 1.0)
        assert fm.normal.shape[1] == 3

    def test_hanging_face_area_is_quarter(self):
        f = Forest(box(subdivisions=(2, 1, 1)))
        f = f.refine([f.leaves[0]])
        geo = GeometryField(f, degree=2)
        conn = build_connectivity(f)
        for batch in conn.interior:
            fm = geo.face_metrics(batch)
            if batch.is_hanging:
                assert np.allclose(fm.jxw.reshape(batch.n_faces, -1).sum(axis=1), 0.25)

    def test_face_points_consistent_between_sides(self):
        """The plus-side metric data is evaluated at the same physical
        points as the minus side: check with positions via a strongly
        sheared two-cell mesh."""
        vertices = np.array(
            [
                [0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0],
                [0, 0, 1], [1, 0, 1], [0, 1, 1], [1, 1, 1],
                [2, 0.2, 0], [2, 1.2, 0], [2, 0.2, 1], [2, 1.2, 1],
            ],
            dtype=float,
        )
        from repro.mesh.hexmesh import HexMesh

        cells = np.array([
            [0, 1, 2, 3, 4, 5, 6, 7],
            [1, 8, 3, 9, 5, 10, 7, 11],
        ])
        geo = GeometryField(Forest(HexMesh(vertices, cells)), degree=2)
        conn = build_connectivity(geo.forest)
        assert len(conn.interior) == 1
        batch = conn.interior[0]
        fm = geo.face_metrics(batch)
        # recompute plus positions directly: they must match fm.points
        qXp, _ = geo._side_face_data(batch.cells_p, batch.face_p, batch.orientation, batch.subface)
        assert np.allclose(qXp, fm.points, atol=1e-12)

    def test_penalty_positive(self):
        geo = GeometryField(Forest(unit_cube()).refine_all(1), degree=2)
        conn = build_connectivity(geo.forest)
        for batch in conn.interior:
            fm = geo.face_metrics(batch)
            assert np.all(fm.penalty > 0)
