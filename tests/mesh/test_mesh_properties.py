"""Property-based invariants of the forest/connectivity machinery under
randomized refinement — the structural guarantees every operator relies
on."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mesh.connectivity import build_connectivity, find_unbalanced_cells
from repro.mesh.generators import box
from repro.mesh.octree import Forest


def random_refined_forest(seed: int, n_rounds: int, subdivisions=(2, 1, 1)) -> Forest:
    rng = np.random.default_rng(seed)
    forest = Forest(box(subdivisions=subdivisions))
    for _ in range(n_rounds):
        n = forest.n_cells
        pick = rng.random(n) < 0.3
        cells = [forest.leaves[i] for i in np.nonzero(pick)[0]]
        if cells:
            forest = forest.refine(cells).balance()
    return forest


@settings(deadline=None, max_examples=12)
@given(seed=st.integers(0, 10_000), rounds=st.integers(1, 3))
def test_random_refinement_invariants(seed, rounds):
    forest = random_refined_forest(seed, rounds)
    # (1) balanced
    assert find_unbalanced_cells(forest) == []
    conn = build_connectivity(forest)
    # (2) watertight face-slot accounting
    conf = conn.n_interior_faces - conn.n_hanging_faces
    slots = (2 * conf + conn.n_hanging_faces + conn.n_hanging_faces // 4
             + conn.n_boundary_faces)
    assert slots == 6 * forest.n_cells
    # (3) hanging faces come in complete groups of 4 per coarse face
    assert conn.n_hanging_faces % 4 == 0
    # (4) leaves cover each tree exactly once: volumes sum to the domain
    vol = sum(1.0 / 8 ** leaf.level for leaf in forest.leaves)
    assert np.isclose(vol, forest.coarse.n_cells)


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(0, 10_000))
def test_coarsening_hierarchy_invariants(seed):
    forest = random_refined_forest(seed, 2)
    levels = forest.coarsening_hierarchy()
    # monotone cell counts, coarsest is level 0 everywhere
    counts = [lv.n_cells for lv in levels]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert levels[-1].max_level <= max(0, levels[0].max_level - len(levels) + 1) + 1
    for lv in levels:
        assert find_unbalanced_cells(lv) == []
    # every level's leaves still tile the domain
    for lv in levels:
        vol = sum(1.0 / 8 ** leaf.level for leaf in lv.leaves)
        assert np.isclose(vol, lv.coarse.n_cells)


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(0, 10_000))
def test_constants_in_laplacian_kernel_on_random_mesh(seed):
    """On any balanced random mesh the pure-Neumann DG Laplacian
    annihilates constants — the strongest single check of cell terms,
    conforming faces, hanging faces, and orientations together."""
    from repro.core.dof_handler import DGDofHandler
    from repro.core.operators import DGLaplaceOperator
    from repro.mesh.mapping import GeometryField

    forest = random_refined_forest(seed, 2)
    geo = GeometryField(forest, 2)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, 2)
    op = DGLaplaceOperator(dof, geo, conn)
    ones = np.ones(dof.n_dofs)
    assert np.abs(op.vmult(ones)).max() < 1e-9


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(0, 10_000))
def test_cg_expansion_continuity_on_random_mesh(seed):
    """Constrained CG fields are single-valued at every shared physical
    node position, whatever the hanging-node configuration."""
    from repro.core.dof_handler import CGDofHandler

    forest = random_refined_forest(seed, 2)
    dof = CGDofHandler(forest, 2)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(dof.n_dofs)
    full = dof.expand(x)
    # gather per cell and compare values at shared quantized positions
    pts = dof._nodal_points_trilinear().reshape(-1, 3)
    vals = full[dof.cell_to_global.ravel()]
    key = np.round(pts / 1e-9).astype(np.int64)
    _, inv = np.unique(key, axis=0, return_inverse=True)
    for g in range(inv.max() + 1):
        group = vals[inv == g]
        assert np.allclose(group, group[0], atol=1e-12)
