"""Tests of Morton keys, forest ordering, contiguous partitioning, and
the VTK export."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.generators import box, unit_cube
from repro.mesh.morton import forest_order, morton_key, partition_contiguous
from repro.mesh.octree import Forest
from repro.mesh.vtk import write_vtk


class TestMortonKey:
    def test_interleaving_small(self):
        # morton(1,0,0)=1, morton(0,1,0)=2, morton(0,0,1)=4, morton(1,1,1)=7
        assert morton_key(1, 0, 0) == 1
        assert morton_key(0, 1, 0) == 2
        assert morton_key(0, 0, 1) == 4
        assert morton_key(1, 1, 1) == 7

    def test_vectorized(self):
        i = np.array([0, 1, 2])
        k = morton_key(i, 0 * i, 0 * i)
        assert list(k) == [0, 1, 8]

    @given(
        i=st.integers(min_value=0, max_value=2**20 - 1),
        j=st.integers(min_value=0, max_value=2**20 - 1),
        k=st.integers(min_value=0, max_value=2**20 - 1),
    )
    @settings(deadline=None, max_examples=50)
    def test_bijective_on_bits(self, i, j, k):
        key = int(morton_key(i, j, k))
        # de-interleave and compare
        di = dj = dk = 0
        for b in range(21):
            di |= ((key >> (3 * b)) & 1) << b
            dj |= ((key >> (3 * b + 1)) & 1) << b
            dk |= ((key >> (3 * b + 2)) & 1) << b
        assert (di, dj, dk) == (i, j, k)

    def test_locality_of_children(self):
        """The 8 children of any cell are contiguous in Morton order."""
        keys = [int(morton_key(2 + (c & 1), 4 + ((c >> 1) & 1), 6 + ((c >> 2) & 1)))
                for c in range(8)]
        assert sorted(keys) == list(range(min(keys), min(keys) + 8))


class TestForestOrder:
    def test_tree_major(self):
        tree = np.array([1, 0, 1, 0])
        level = np.zeros(4, dtype=int)
        anchors = np.zeros((4, 3), dtype=int)
        order = forest_order(tree, level, anchors)
        assert list(tree[order]) == [0, 0, 1, 1]

    def test_mixed_levels_nested(self):
        """A parent's position in the curve precedes (or equals) the range
        of its children: scaled anchors make levels comparable."""
        tree = np.array([0, 0, 0])
        level = np.array([1, 2, 2])
        anchors = np.array([[1, 0, 0], [0, 1, 1], [3, 3, 3]])
        order = forest_order(tree, level, anchors)
        # anchor (0,1,1)@2 scales to (0,2,2); (1,0,0)@1 -> (2,0,0);
        # (3,3,3)@2 -> (6,6,6): morton orders (0,2,2) < (2,0,0) < (6,6,6)
        assert list(order) == [1, 0, 2]


class TestPartitionContiguous:
    def test_equal_weights(self):
        part = partition_contiguous(np.ones(8), 4)
        assert list(part) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_weighted_cut(self):
        w = np.array([10.0, 1, 1, 1, 1, 1, 1, 4])
        part = partition_contiguous(w, 2)
        assert part[0] == 0
        assert part[-1] == 1
        # total weight 20: the heavy first item fills rank 0 almost alone
        assert np.sum(part == 0) <= 3

    def test_more_parts_than_items(self):
        part = partition_contiguous(np.ones(2), 5)
        assert part.max() < 5 and len(part) == 2

    def test_empty(self):
        assert len(partition_contiguous(np.ones(0), 3)) == 0

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_contiguous(np.ones(3), 0)

    @given(n=st.integers(1, 50), p=st.integers(1, 10))
    @settings(deadline=None, max_examples=30)
    def test_monotone_and_complete(self, n, p):
        part = partition_contiguous(np.ones(n), p)
        assert np.all(np.diff(part) >= 0)
        assert part.min() >= 0 and part.max() < p


class TestVTK:
    def test_write_and_structure(self, tmp_path):
        forest = Forest(box(subdivisions=(2, 1, 1))).refine_all(1)
        path = write_vtk(tmp_path / "mesh.vtk", forest,
                         cell_data={"level": np.ones(forest.n_cells)})
        text = path.read_text()
        assert "DATASET UNSTRUCTURED_GRID" in text
        assert f"CELLS {forest.n_cells} {forest.n_cells * 9}" in text
        assert text.count("\n12") >= forest.n_cells - 1  # hexahedron type
        assert "SCALARS level double 1" in text

    def test_bad_cell_data_raises(self, tmp_path):
        forest = Forest(unit_cube())
        with pytest.raises(ValueError):
            write_vtk(tmp_path / "m.vtk", forest, cell_data={"x": np.ones(3)})

    def test_vtk_vertex_order_positive_volume(self, tmp_path):
        """VTK hexahedron ordering must produce a positively oriented
        cell: check via the scalar triple product of the first corner."""
        forest = Forest(unit_cube())
        write_vtk(tmp_path / "m.vtk", forest)
        from repro.mesh.vtk import _VTK_ORDER

        pts = forest.cell_corner_points(0)[_VTK_ORDER]
        e1 = pts[1] - pts[0]  # along x
        e2 = pts[3] - pts[0]  # along y in VTK order
        e3 = pts[4] - pts[0]  # along z
        assert np.dot(np.cross(e1, e2), e3) > 0
