"""Tests of the forest-of-octrees refinement structure."""

import numpy as np
import pytest

from repro.mesh.generators import box, unit_cube
from repro.mesh.octree import CellId, Forest


class TestCellId:
    def test_children_and_parent_roundtrip(self):
        c = CellId(2, 1, 0, 1, 1)
        kids = c.children()
        assert len(kids) == 8
        assert all(k.parent() == c for k in kids)
        assert sorted(k.child_index() for k in kids) == list(range(8))

    def test_anchor_bounds_checked(self):
        with pytest.raises(ValueError):
            CellId(0, 1, 2, 0, 0)
        with pytest.raises(ValueError):
            CellId(0, 0, 0, 0, 1)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            CellId(0, 0, 0, 0, 0).parent()

    def test_ref_corners_of_child(self):
        c = CellId(0, 1, 1, 0, 1)
        corners = c.ref_corners()
        assert np.allclose(corners[0], [0.5, 0.0, 0.5])
        assert np.allclose(corners[7], [1.0, 0.5, 1.0])

    def test_ref_points_scaling(self):
        c = CellId(0, 2, 3, 0, 1)
        pts = c.ref_points(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
        assert np.allclose(pts[0], [0.75, 0.0, 0.25])
        assert np.allclose(pts[1], [1.0, 0.25, 0.5])


class TestForest:
    def test_initial_leaves_are_roots(self):
        f = Forest(box(subdivisions=(2, 1, 1)))
        assert f.n_cells == 2
        assert f.max_level == 0

    def test_uniform_refinement_counts(self):
        f = Forest(unit_cube()).refine_all(2)
        assert f.n_cells == 64
        assert f.min_level == f.max_level == 2

    def test_refine_single_cell(self):
        f = Forest(unit_cube())
        f2 = f.refine([f.leaves[0]])
        assert f2.n_cells == 8

    def test_refine_non_leaf_raises(self):
        f = Forest(unit_cube())
        f2 = f.refine([f.leaves[0]])
        with pytest.raises(KeyError):
            f2.refine([f.leaves[0]])

    def test_coarsen_restores(self):
        f = Forest(unit_cube())
        f2 = f.refine_all(1)
        f3 = f2.coarsen([CellId(0, 0, 0, 0, 0)])
        assert f3.n_cells == 1

    def test_coarsen_partial_group_raises(self):
        f = Forest(unit_cube()).refine_all(1)
        f = f.refine([f.leaves[0]])
        with pytest.raises(KeyError):
            # children of the root are not all leaves anymore
            f.coarsen([CellId(0, 0, 0, 0, 0)])

    def test_leaves_in_morton_order(self):
        f = Forest(box(subdivisions=(2, 1, 1))).refine_all(1)
        trees = [c.tree for c in f.leaves]
        assert trees == sorted(trees)
        # within tree 0 the first leaf is the origin child
        first = f.leaves[0]
        assert (first.i, first.j, first.k) == (0, 0, 0)

    def test_index_of(self):
        f = Forest(unit_cube()).refine_all(1)
        for i, leaf in enumerate(f.leaves):
            assert f.index_of(leaf) == i
        with pytest.raises(KeyError):
            f.index_of(CellId(0, 0, 0, 0, 0))


class TestBalance:
    def test_balanced_after_local_refinement(self):
        f = Forest(unit_cube())
        f = f.refine_all(1)
        # refine the origin cell, then its (1,1,1) child: the level-3 cells
        # then touch level-1 siblings -> a 4:1 violation across their faces
        f = f.refine([f.leaves[0]])
        corner = [c for c in f.leaves if c.level == 2 and (c.i, c.j, c.k) == (1, 1, 1)]
        f = f.refine(corner)
        balanced = f.balance()
        # check no face-neighbor differs by more than 1 level
        from repro.mesh.connectivity import find_unbalanced_cells

        assert find_unbalanced_cells(balanced) == []
        assert balanced.n_cells > f.n_cells

    def test_already_balanced_is_noop(self):
        f = Forest(unit_cube()).refine_all(1)
        assert f.balance().n_cells == f.n_cells


class TestGlobalCoarsening:
    def test_uniform_hierarchy(self):
        f = Forest(unit_cube()).refine_all(2)
        levels = f.coarsening_hierarchy()
        assert [lv.n_cells for lv in levels] == [64, 8, 1]

    def test_transfer_map_children(self):
        f = Forest(unit_cube()).refine_all(1)
        coarse, transfer = f.global_coarsening_level()
        assert coarse.n_cells == 1
        parent = coarse.leaves[0]
        assert len(transfer[parent]) == 8

    def test_adaptive_hierarchy_keeps_fine_cells(self):
        f = Forest(box(subdivisions=(2, 1, 1))).refine_all(1)
        f = f.refine([leaf for leaf in f.leaves if leaf.tree == 0]).balance()
        coarse, transfer = f.global_coarsening_level()
        # tree-0 cells coarsen one level; tree-1 cells were level 1 -> level 0
        assert coarse.max_level <= 1
        for p, kids in transfer.items():
            if len(kids) == 8:
                assert all(k.parent() == p for k in kids)
            else:
                assert kids == [p]
