"""Tests of translational periodic boundary matching."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest


def periodic_box(subdivisions=(2, 2, 2), refinements=0, dims=(0,)):
    mesh = box(
        subdivisions=subdivisions,
        boundary_ids={0: 10, 1: 11, 2: 20, 3: 21, 4: 30, 5: 31},
    )
    forest = Forest(mesh).refine_all(refinements)
    pairs = []
    translations = {0: (1.0, 0, 0), 1: (0, 1.0, 0), 2: (0, 0, 1.0)}
    ids = {0: (10, 11), 1: (20, 21), 2: (30, 31)}
    for d in dims:
        pairs.append((ids[d][0], ids[d][1], translations[d]))
    conn = build_connectivity(forest, periodic=pairs)
    return forest, conn


class TestPeriodicMatching:
    def test_x_periodic_face_counts(self):
        forest, conn = periodic_box((2, 2, 2), dims=(0,))
        # 4 extra interior faces, 8 fewer boundary faces
        assert conn.n_interior_faces == 12 + 4
        assert conn.n_boundary_faces == 24 - 8

    def test_fully_periodic_torus(self):
        forest, conn = periodic_box((2, 2, 2), dims=(0, 1, 2))
        assert conn.n_boundary_faces == 0
        assert conn.n_interior_faces == 24  # every face interior exactly once
        assert 2 * conn.n_interior_faces == 6 * forest.n_cells

    def test_refined_periodic(self):
        forest, conn = periodic_box((1, 1, 1), refinements=1, dims=(0,))
        assert conn.n_boundary_faces == 16
        assert conn.n_interior_faces == 12 + 4

    def test_missing_partner_raises(self):
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 10, 1: 11})
        forest = Forest(mesh)
        with pytest.raises(RuntimeError, match="no partner"):
            build_connectivity(forest, periodic=[(10, 11, (0.5, 0, 0))])


class TestPeriodicOperators:
    def test_constant_in_kernel_on_torus(self):
        """Fully periodic DG Laplacian annihilates constants — every face
        is interior, so this checks the periodic orientations too."""
        forest, conn = periodic_box((2, 2, 2), dims=(0, 1, 2))
        geo = GeometryField(forest, 2)
        dof = DGDofHandler(forest, 2)
        op = DGLaplaceOperator(dof, geo, conn)
        ones = np.ones(dof.n_dofs)
        assert np.abs(op.vmult(ones)).max() < 1e-10

    def test_symmetry_on_torus(self):
        forest, conn = periodic_box((2, 1, 1), dims=(0,))
        geo = GeometryField(forest, 2)
        dof = DGDofHandler(forest, 2)
        op = DGLaplaceOperator(dof, geo, conn)
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((2, dof.n_dofs))
        assert np.isclose(x @ op.vmult(y), y @ op.vmult(x), rtol=1e-11)

    def test_periodic_poisson_plane_wave(self):
        """-lap(u) = (2 pi)^2 u for u = sin(2 pi x): solve on the
        x-periodic box (Neumann in y, z keep the problem well-posed up to
        the constant) and compare."""
        from repro.core.operators import InverseMassOperator
        from repro.solvers.krylov import conjugate_gradient

        forest, conn = periodic_box((4, 1, 1), refinements=0, dims=(0,))
        degree = 3
        geo = GeometryField(forest, degree)
        dof = DGDofHandler(forest, degree)
        op = DGLaplaceOperator(dof, geo, conn)
        cm = geo.cell_metrics()
        f = (2 * np.pi) ** 2 * np.sin(2 * np.pi * cm.points[:, 0])
        b = dof.flat(geo.kernel.integrate_values(f * cm.jxw))
        ones = np.ones(dof.n_dofs)
        b = b - (ones @ b) / (ones @ ones) * ones
        res = conjugate_gradient(op, b, InverseMassOperator(dof, geo),
                                 tol=1e-10, max_iter=3000)
        assert res.converged
        uq = geo.kernel.values(dof.cell_view(res.x))
        exact = np.sin(2 * np.pi * cm.points[:, 0])
        # remove the mean ambiguity
        uq = uq - (uq * cm.jxw).sum() / cm.jxw.sum()
        err = np.sqrt(np.sum((uq - exact) ** 2 * cm.jxw))
        assert err < 2e-2

    def test_advection_wraps_around(self):
        """A concentration blob advected through the periodic boundary
        reappears on the other side with conserved mass."""
        from repro.core.dof_handler import DGDofHandler as DH
        from repro.ns.scalar_transport import ScalarTransportSolver

        forest, conn = periodic_box((4, 1, 1), dims=(0,))
        degree = 2
        geo = GeometryField(forest, degree)
        dof_u = DH(forest, degree, n_components=3)
        solver = ScalarTransportSolver(
            forest, degree, diffusivity=0.0, connectivity=conn, geometry=geo,
            dof_u=dof_u,
        )
        # blob in the first quarter
        cm = geo.cell_metrics()
        c0 = np.exp(-100 * (cm.points[:, 0] - 0.125) ** 2)
        # L2 projection
        from repro.core.operators import InverseMassOperator

        minv = InverseMassOperator(solver.dof_c, geo)
        solver.c = minv.vmult(solver.dof_c.flat(
            geo.kernel.integrate_values(c0 * cm.jxw)))
        mass0 = float((geo.kernel.values(solver.dof_c.cell_view(solver.c)) * cm.jxw).sum())
        # uniform velocity in +x
        n = degree + 1
        u = np.zeros((forest.n_cells, 3, n, n, n))
        u[:, 0] = 1.0
        u_flat = dof_u.flat(u)
        # advect one full period (t = 1): the blob returns to its start
        dt = 0.005
        for _ in range(200):
            solver.step(dt, u_flat)
        mass1 = float((geo.kernel.values(solver.dof_c.cell_view(solver.c)) * cm.jxw).sum())
        assert np.isclose(mass1, mass0, rtol=1e-10)  # conservation
        cq = geo.kernel.values(solver.dof_c.cell_view(solver.c))
        # the peak is back near x = 0.125 (diffused a bit by upwinding)
        peak_x = cm.points[:, 0].ravel()[np.argmax(cq.ravel())]
        assert abs((peak_x - 0.125 + 0.5) % 1.0 - 0.5) < 0.15