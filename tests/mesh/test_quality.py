"""Tests of the mesh-quality metrics and the quality of the generated
lung meshes (the mesher's design goal, Section 3.3)."""

import numpy as np
import pytest

from repro.lung import airway_tree_mesh, grow_airway_tree
from repro.mesh.generators import bifurcation, box, cylinder
from repro.mesh.hexmesh import HexMesh
from repro.mesh.octree import Forest
from repro.mesh.quality import mesh_quality


class TestQualityMetrics:
    def test_unit_cube_is_perfect(self):
        rep = mesh_quality(Forest(box()))
        assert rep.worst_scaled_jacobian == pytest.approx(1.0)
        assert rep.max_aspect_ratio == pytest.approx(1.0)
        assert rep.max_skewness == pytest.approx(0.0, abs=1e-12)
        assert rep.all_valid()

    def test_stretched_box_aspect_ratio(self):
        rep = mesh_quality(Forest(box(upper=(4.0, 1.0, 1.0))))
        assert rep.max_aspect_ratio == pytest.approx(4.0)
        assert rep.worst_scaled_jacobian == pytest.approx(1.0)  # still orthogonal

    def test_sheared_cell_skewness(self):
        vertices = np.array(
            [[0, 0, 0], [1, 0, 0], [0.5, 1, 0], [1.5, 1, 0],
             [0, 0, 1], [1, 0, 1], [0.5, 1, 1], [1.5, 1, 1]], dtype=float
        )
        mesh = HexMesh(vertices, np.arange(8)[None, :])
        rep = mesh_quality(Forest(mesh))
        assert rep.max_skewness > 0.3  # 45-degree shear: cos = 1/sqrt(2) ~ 0.45
        assert rep.worst_scaled_jacobian < 1.0
        assert rep.all_valid()

    def test_inverted_cell_detected(self):
        mesh = box()
        cells = mesh.cells.copy()
        cells[0, [0, 1]] = cells[0, [1, 0]]
        bad = HexMesh(mesh.vertices, cells)
        rep = mesh_quality(Forest(bad))
        assert not rep.all_valid()

    def test_refinement_preserves_quality(self):
        rep0 = mesh_quality(Forest(box(upper=(2.0, 1.0, 1.0))))
        rep1 = mesh_quality(Forest(box(upper=(2.0, 1.0, 1.0))).refine_all(1))
        assert np.isclose(rep0.worst_scaled_jacobian, rep1.worst_scaled_jacobian)
        assert np.isclose(rep0.max_aspect_ratio, rep1.max_aspect_ratio)

    def test_summary_string(self):
        rep = mesh_quality(Forest(box(subdivisions=(2, 1, 1))))
        s = rep.summary()
        assert "2 cells" in s and "scaled Jacobian" in s


class TestGeneratedMeshQuality:
    def test_cylinder_quality(self):
        rep = mesh_quality(Forest(cylinder(n_axial=3, smooth=False)))
        assert rep.all_valid()
        assert rep.worst_scaled_jacobian > 0.2

    def test_bifurcation_quality(self):
        rep = mesh_quality(Forest(bifurcation()))
        assert rep.all_valid()
        assert rep.worst_scaled_jacobian > 0.1

    @pytest.mark.parametrize("g,seed", [(3, 0), (3, 1), (5, 0)])
    def test_lung_mesh_quality(self, g, seed):
        """Every generated airway mesh stays valid with bounded
        distortion — the property the tube-tree mesher was iterated on
        (see DESIGN.md 5a)."""
        lm = airway_tree_mesh(grow_airway_tree(g, seed=seed))
        rep = mesh_quality(lm.forest)
        assert rep.all_valid(), rep.summary()
        assert rep.worst_scaled_jacobian > 0.01
        assert rep.max_aspect_ratio < 12.0
