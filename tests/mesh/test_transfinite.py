"""Tests of the transfinite surface-blend geometry machinery."""

import numpy as np
import pytest

from repro.mesh.generators import box, cylinder
from repro.mesh.transfinite import CylinderGeometry, SurfaceBlendGeometry


class TestSurfaceBlendGeometry:
    def test_base_class_requires_projector(self):
        geo = SurfaceBlendGeometry(box(), {0: 3})
        with pytest.raises(NotImplementedError):
            geo(0, np.array([[0.5, 1.0, 0.5]]))

    def test_unlisted_tree_stays_trilinear(self):
        mesh = box()
        geo = CylinderGeometry(mesh, {}, (0, 0, 0), (0, 0, 1), 1.0, 10.0)
        ref = np.random.default_rng(0).uniform(0, 1, (5, 3))
        assert np.allclose(geo(0, ref), mesh.map_trilinear(0, ref))

    def test_blend_vanishes_on_inner_face(self):
        """The correction is zero on the face opposite to the surface,
        keeping the mesh watertight against non-surface neighbors."""
        mesh = cylinder(radius=2.0, length=1.0, n_axial=1, smooth=True)
        geo = mesh.geometry
        tree = 4  # a ring cell; surface face = 3 (y high), inner = y low
        ref_inner = np.array([[0.3, 0.0, 0.7], [0.9, 0.0, 0.1]])
        assert np.allclose(geo(tree, ref_inner),
                           mesh.map_trilinear(tree, ref_inner), atol=1e-14)

    def test_surface_face_lands_on_cylinder(self):
        mesh = cylinder(radius=1.5, length=2.0, n_axial=2, smooth=True)
        geo = mesh.geometry
        ref_surface = np.array([[0.2, 1.0, 0.4], [0.8, 1.0, 0.9]])
        for tree in range(4, 12):
            pts = geo(tree, ref_surface)
            assert np.allclose(np.hypot(pts[:, 0], pts[:, 1]), 1.5, atol=1e-12)

    def test_interior_blend_monotone(self):
        """Moving from the inner to the surface face, the radial
        correction grows linearly (Gordon-Hall blending)."""
        mesh = cylinder(radius=1.0, length=1.0, n_axial=1, smooth=True)
        geo = mesh.geometry
        tree = 4
        radii = []
        for b in (0.0, 0.5, 1.0):
            p = geo(tree, np.array([[0.5, b, 0.5]]))[0]
            radii.append(np.hypot(p[0], p[1]))
        assert radii[0] < radii[1] < radii[2]
        # the correction *vector* is exactly linear in the blend coordinate
        def corr(b):
            ref = np.array([[0.5, b, 0.5]])
            return geo(tree, ref)[0] - mesh.map_trilinear(tree, ref)[0]

        assert np.allclose(corr(0.5), 0.5 * corr(1.0), atol=1e-14)
        assert np.allclose(corr(0.0), 0.0, atol=1e-14)


class TestCylinderProjection:
    def test_projects_radially(self):
        geo = CylinderGeometry(box(), {}, (0, 0, 0), (0, 0, 1), 4.0, 2.0)
        pts = np.array([[1.0, 0.0, 1.0], [0.0, 3.0, 2.5]])
        proj = geo.project(pts)
        assert np.allclose(np.hypot(proj[:, 0], proj[:, 1]), 2.0)
        assert np.allclose(proj[:, 2], pts[:, 2])  # axial coordinate kept

    def test_tapered_radius(self):
        geo = CylinderGeometry(box(), {}, (0, 0, 0), (0, 0, 1), 2.0, 2.0, 1.0)
        p0 = geo.project(np.array([[1.0, 0.0, 0.0]]))[0]
        p1 = geo.project(np.array([[1.0, 0.0, 2.0]]))[0]
        assert np.hypot(p0[0], p0[1]) == pytest.approx(2.0)
        assert np.hypot(p1[0], p1[1]) == pytest.approx(1.0)

    def test_axis_point_degenerate_safe(self):
        geo = CylinderGeometry(box(), {}, (0, 0, 0), (0, 0, 1), 1.0, 1.0)
        proj = geo.project(np.array([[0.0, 0.0, 0.5]]))
        assert np.all(np.isfinite(proj))
