"""Coverage of the boundary-condition containers and small model APIs."""

import numpy as np
import pytest

from repro.lung.performance import (
    estimate_cells,
    estimate_time_steps,
    nodes_for_strong_scaling_limit,
)
from repro.ns.bc import BoundaryConditions, PressureDirichlet, VelocityDirichlet
from repro.perf.flops import chebyshev_iteration_flops, mults_1d


class TestBoundaryConditions:
    def test_default_is_no_slip(self):
        bcs = BoundaryConditions()
        bc = bcs.get(42)
        assert isinstance(bc, VelocityDirichlet)
        g = np.asarray(bc.g(np.ones(3), np.ones(3), np.ones(3), 0.0))
        assert np.allclose(g, 0.0)

    def test_classification(self):
        bcs = BoundaryConditions({1: PressureDirichlet(2.0),
                                  2: VelocityDirichlet.no_slip()})
        present = (1, 2, 3)
        assert bcs.pressure_dirichlet_ids(present) == (1,)
        assert bcs.velocity_dirichlet_ids(present) == (2, 3)  # 3 defaults

    def test_constant_pressure_value(self):
        bc = PressureDirichlet(5.0)
        v = bc.value(np.zeros(4), np.zeros(4), np.zeros(4), 1.0)
        assert np.allclose(v, 5.0)

    def test_callable_pressure_value(self):
        bc = PressureDirichlet(lambda x, y, z, t: x + t)
        v = bc.value(np.array([1.0, 2.0]), 0, 0, 0.5)
        assert np.allclose(v, [1.5, 2.5])

    def test_wrong_kind_access_raises(self):
        bcs = BoundaryConditions({1: PressureDirichlet(0.0)})
        with pytest.raises(KeyError):
            bcs.velocity_value(1, 0, 0, 0, 0)
        with pytest.raises(KeyError):
            bcs.pressure_value(2, 0, 0, 0, 0)  # id 2 defaults to velocity

    def test_set_overrides(self):
        bcs = BoundaryConditions()
        bcs.set(7, PressureDirichlet(1.0))
        assert isinstance(bcs.get(7), PressureDirichlet)


class TestPerformanceModelPieces:
    def test_mults_1d_parity(self):
        assert mults_1d(4, 4, even_odd=True) == 8
        assert mults_1d(4, 4, even_odd=False) == 16
        assert mults_1d(3, 3, even_odd=True) == 8  # odd sizes save less

    def test_chebyshev_update_flops(self):
        assert chebyshev_iteration_flops(3, 64) == 6 * 64

    def test_estimate_cells_monotone(self):
        cells = [estimate_cells(g) for g in (3, 5, 7, 9, 11)]
        assert all(b > a for a, b in zip(cells, cells[1:]))

    def test_estimate_time_steps_tracks_tidal_volume(self):
        n1 = estimate_time_steps(7, tidal_volume=250e-6)
        n2 = estimate_time_steps(7, tidal_volume=500e-6)
        assert np.isclose(n2 / n1, 2.0, rtol=1e-12)  # Eq. (8): N ~ V_T

    def test_nodes_power_of_two(self):
        for cells in (1e3, 1e4, 3.5e5):
            n = nodes_for_strong_scaling_limit(cells)
            assert n >= 1 and (n & (n - 1)) == 0
