"""Tests of checkpoint/restart: a restarted run must continue exactly."""

import dataclasses

import numpy as np
import pytest

from repro.lung import LungVentilationSimulation
from repro.robustness import RunConfig
from repro.mesh.generators import box
from repro.mesh.octree import Forest
from repro.ns import (
    BeltramiFlow,
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    SolverSettings,
    VelocityDirichlet,
)
from repro.ns.checkpoint import (
    load_lung_state,
    load_scheme_state,
    save_lung_state,
    save_scheme_state,
)


def beltrami_solver():
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(1)
    flow = BeltramiFlow(0.05)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
    )
    s = IncompressibleNavierStokesSolver(
        forest, 2, 0.05, bcs, SolverSettings(solver_tolerance=1e-8)
    )
    s.initialize(flow.velocity)
    return s


class TestSchemeCheckpoint:
    def test_restart_is_bit_identical(self, tmp_path):
        ref = beltrami_solver()
        for _ in range(4):
            ref.step(0.01)
        # save at step 2 of an identical twin, restore, and continue
        twin = beltrami_solver()
        for _ in range(2):
            twin.step(0.01)
        path = tmp_path / "state.npz"
        save_scheme_state(path, twin.scheme)

        fresh = beltrami_solver()
        load_scheme_state(path, fresh.scheme)
        assert fresh.scheme.t == pytest.approx(twin.scheme.t)
        for _ in range(2):
            fresh.step(0.01)
        assert np.allclose(fresh.velocity, ref.velocity, atol=1e-12)
        assert np.allclose(fresh.pressure, ref.pressure, atol=1e-12)

    def test_size_mismatch_rejected(self, tmp_path):
        s = beltrami_solver()
        s.step(0.01)
        path = tmp_path / "state.npz"
        save_scheme_state(path, s.scheme)
        other = IncompressibleNavierStokesSolver(
            Forest(box(boundary_ids={0: 1})).refine_all(1), 3, 0.05,
            BoundaryConditions({1: VelocityDirichlet.no_slip()}),
            SolverSettings(solver_tolerance=1e-6),
        )
        other.initialize()
        with pytest.raises(ValueError, match="does not match"):
            load_scheme_state(path, other.scheme)


def lung_config():
    return RunConfig(
        generations=1, degree=2,
        solver=SolverSettings(solver_tolerance=1e-4, cfl=0.3),
    )


class TestLungCheckpoint:
    def test_lung_restart_continues_exactly(self, tmp_path):
        ref = LungVentilationSimulation(lung_config())
        twin = LungVentilationSimulation(lung_config())
        for _ in range(4):
            ref.step()
        for _ in range(2):
            twin.step()
        path = tmp_path / "lung.npz"
        save_lung_state(path, twin)

        fresh = LungVentilationSimulation(lung_config())
        load_lung_state(path, fresh)
        for _ in range(2):
            fresh.step()
        assert fresh.time == pytest.approx(ref.time, rel=1e-12)
        assert np.allclose(fresh.solver.velocity, ref.solver.velocity, atol=1e-10)
        assert fresh.tidal_volume_delivered() == pytest.approx(
            ref.tidal_volume_delivered(), rel=1e-10
        )

    def test_outlet_count_validated(self, tmp_path):
        sim1 = LungVentilationSimulation(lung_config())
        sim1.step()
        path = tmp_path / "lung.npz"
        save_lung_state(path, sim1)
        sim2 = LungVentilationSimulation(
            dataclasses.replace(lung_config(), generations=2)
        )
        with pytest.raises(ValueError, match="outlet count"):
            load_lung_state(path, sim2)
