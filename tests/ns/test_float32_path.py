"""End-to-end tests of the single-precision forward solve
(``compute_dtype="float32"``): the state stays float32, the physics
tracks the double run, and checkpoints remain double-precision and
bit-identical on resume (Section 3.4 mixed precision)."""

import numpy as np
import pytest

from repro.mesh.generators import box
from repro.mesh.octree import Forest
from repro.ns import (
    BeltramiFlow,
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    SolverSettings,
    VelocityDirichlet,
)
from repro.ns.checkpoint import load_scheme_state, save_scheme_state


def beltrami_solver(compute_dtype=None):
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(1)
    flow = BeltramiFlow(0.05)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
    )
    s = IncompressibleNavierStokesSolver(
        forest, 2, 0.05, bcs, SolverSettings(solver_tolerance=1e-6),
        compute_dtype=compute_dtype,
    )
    s.initialize(flow.velocity)
    return s, flow


class TestFloat32ForwardSolve:
    def test_state_stays_float32(self):
        solver, _ = beltrami_solver("float32")
        assert solver.compute_dtype == np.dtype(np.float32)
        assert solver.velocity.dtype == np.float32
        for _ in range(3):
            solver.step(0.01)
        assert solver.velocity.dtype == np.float32
        assert solver.pressure.dtype == np.float32
        assert np.all(np.isfinite(solver.velocity))

    def test_tracks_double_run(self):
        s32, flow = beltrami_solver("float32")
        s64, _ = beltrami_solver("float64")
        for _ in range(3):
            s32.step(0.01)
            s64.step(0.01)
        u64 = np.asarray(s64.velocity, dtype=np.float64)
        u32 = np.asarray(s32.velocity, dtype=np.float64)
        rel = np.linalg.norm(u32 - u64) / np.linalg.norm(u64)
        # iterative tolerances dominate fp32 roundoff at 1e-6 solver tol
        assert rel < 1e-3

    def test_accuracy_matches_double(self):
        s32, flow = beltrami_solver("float32")
        s64, _ = beltrami_solver("float64")
        for _ in range(5):
            s32.step(0.01)
            s64.step(0.01)
        err32 = s32.velocity_error_l2(flow.velocity, s32.scheme.t)
        err64 = s64.velocity_error_l2(flow.velocity, s64.scheme.t)
        # discretization error dominates: single precision must not
        # degrade the solution error beyond the noise floor
        assert err32 <= 1.05 * err64


class TestFloat32Checkpoint:
    def test_checkpoint_stores_double_and_resumes_bit_identically(self, tmp_path):
        ref, _ = beltrami_solver("float32")
        for _ in range(4):
            ref.step(0.01)
        twin, _ = beltrami_solver("float32")
        for _ in range(2):
            twin.step(0.01)
        path = tmp_path / "state32.npz"
        save_scheme_state(path, twin.scheme)

        # the on-disk format is always double precision — resuming is an
        # exact fp32 -> fp64 -> fp32 round trip
        with np.load(path) as data:
            for key in data.files:
                if data[key].dtype.kind == "f":
                    assert data[key].dtype == np.float64, key

        fresh, _ = beltrami_solver("float32")
        load_scheme_state(path, fresh.scheme)
        assert fresh.scheme.t == pytest.approx(twin.scheme.t)
        assert fresh.velocity.dtype == np.float32
        assert np.array_equal(fresh.velocity, twin.velocity)
        for _ in range(2):
            fresh.step(0.01)
        assert np.array_equal(fresh.velocity, ref.velocity)
        assert np.array_equal(fresh.pressure, ref.pressure)
