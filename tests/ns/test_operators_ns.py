"""Tests of the Navier-Stokes operators: gradient/divergence duality,
convective consistency, penalty behaviour, Helmholtz."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import (
    ConvectiveOperator,
    DGLaplaceOperator,
    DivergenceContinuityPenalty,
    DivergenceOperator,
    GradientOperator,
    HelmholtzOperator,
    InverseMassOperator,
    MassOperator,
    PenaltyStepOperator,
    VectorDGLaplace,
)
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.ns.bc import BoundaryConditions, PressureDirichlet, VelocityDirichlet


@pytest.fixture(scope="module")
def setup():
    mesh = box(subdivisions=(2, 2, 1), boundary_ids={0: 1, 1: 2})
    forest = Forest(mesh)
    k = 2
    geo = GeometryField(forest, k)
    geo_over = GeometryField(forest, k, n_q_points=k + 2)
    conn = build_connectivity(forest)
    dof_u = DGDofHandler(forest, k, n_components=3)
    dof_us = DGDofHandler(forest, k)
    dof_p = DGDofHandler(forest, k - 1)
    bcs = BoundaryConditions({1: PressureDirichlet(0.0), 2: PressureDirichlet(0.0)})
    return forest, geo, geo_over, conn, dof_u, dof_us, dof_p, bcs


def interpolate_vector(dof_u, forest, fn):
    n = dof_u.n1
    from repro.core.basis import LagrangeBasis1D

    nodes = LagrangeBasis1D(dof_u.degree).nodes
    zz, yy, xx = np.meshgrid(nodes, nodes, nodes, indexing="ij")
    ref = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
    out = np.empty((forest.n_cells, 3, n, n, n))
    for c, leaf in enumerate(forest.leaves):
        pts = forest.coarse.map_geometry(leaf.tree, leaf.ref_points(ref))
        out[c] = np.asarray(fn(pts[:, 0], pts[:, 1], pts[:, 2])).reshape(3, n, n, n)
    return dof_u.flat(out)


class TestGradDivDuality:
    def test_negative_transpose(self, setup, rng):
        forest, geo, _, conn, dof_u, _, dof_p, bcs = setup
        D = DivergenceOperator(dof_u, dof_p, geo, conn, bcs)
        G = GradientOperator(dof_u, dof_p, geo, conn, bcs)
        u = rng.standard_normal(dof_u.n_dofs)
        p = rng.standard_normal(dof_p.n_dofs)
        # with homogeneous data: (D u, p) == -(u, G p)
        lhs = p @ D.vmult(u)
        rhs = -u @ G.vmult(p)
        assert np.isclose(lhs, rhs, rtol=1e-11)

    def test_divergence_of_constant_field_is_zero(self, setup):
        forest, geo, _, conn, dof_u, _, dof_p, _ = setup
        # constant velocity, all boundaries OUTFLOW (u* = u_m): telescoping
        bcs = BoundaryConditions({0: PressureDirichlet(0.0), 1: PressureDirichlet(0.0), 2: PressureDirichlet(0.0)})
        D = DivergenceOperator(dof_u, dof_p, geo, conn, bcs)
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([1 + 0 * x, 2 + 0 * y, -1 + 0 * z]))
        div = D.apply(u)
        assert np.abs(div).max() < 1e-10

    def test_divergence_of_linear_field(self, setup):
        """div(x, y, z) = 3: (D u, q) must equal 3 * integral(q)."""
        forest, geo, _, conn, dof_u, _, dof_p, bcs_unused = setup
        bcs = BoundaryConditions({0: PressureDirichlet(0.0), 1: PressureDirichlet(0.0), 2: PressureDirichlet(0.0)})
        D = DivergenceOperator(dof_u, dof_p, geo, conn, bcs)
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([x, y, z]))
        div = D.apply(u)
        # test against q = 1: total = 3 * volume = 3 * 1
        ones = np.ones(dof_p.n_dofs)
        assert np.isclose(ones @ div, 3.0, rtol=1e-10)

    def test_gradient_of_linear_pressure(self, setup):
        """(G p, v) with p = x against v = e_x equals volume integral of
        dp/dx = 1 (with consistent pressure-Dirichlet data on 1, 2)."""
        forest, geo, _, conn, dof_u, _, dof_p, _ = setup
        pd = PressureDirichlet(lambda x, y, z, t: x)
        bcs = BoundaryConditions({0: pd, 1: pd, 2: pd, 3: pd})
        # make ALL boundaries pressure-Dirichlet with g = x
        mesh_ids = {b.boundary_id for b in conn.boundary}
        bcs = BoundaryConditions({bid: pd for bid in mesh_ids})
        G = GradientOperator(dof_u, dof_p, geo, conn, bcs)
        # interpolate p = x in the pressure space
        from repro.core.basis import LagrangeBasis1D

        n = dof_p.n1
        nodes = LagrangeBasis1D(dof_p.degree).nodes
        zz, yy, xx = np.meshgrid(nodes, nodes, nodes, indexing="ij")
        ref = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
        parr = np.empty((forest.n_cells, n, n, n))
        for c, leaf in enumerate(forest.leaves):
            pts = forest.coarse.map_geometry(leaf.tree, leaf.ref_points(ref))
            parr[c] = pts[:, 0].reshape(n, n, n)
        gp = G.apply(dof_p.flat(parr))
        vx = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([1 + 0 * x, 0 * y, 0 * z]))
        assert np.isclose(vx @ gp, 1.0, rtol=1e-10)


class TestConvective:
    def test_zero_velocity_gives_zero(self, setup):
        forest, _, geo_over, conn, dof_u, _, _, bcs = setup
        C = ConvectiveOperator(dof_u, geo_over, conn, bcs)
        assert np.allclose(C.apply(np.zeros(dof_u.n_dofs)), 0.0)

    def test_constant_velocity_with_outflow(self, setup):
        """For constant u and outflow everywhere, div(u(x)u) integrates to
        boundary flux only; testing against constant v: sum = net flux of
        u (u.n) over the boundary = 0 for the closed box."""
        forest, _, geo_over, conn, dof_u, _, _, _ = setup
        mesh_ids = {b.boundary_id for b in conn.boundary}
        bcs = BoundaryConditions({bid: PressureDirichlet(0.0) for bid in mesh_ids})
        C = ConvectiveOperator(dof_u, geo_over, conn, bcs)
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([1 + 0 * x, 0.5 + 0 * y, 0 * z]))
        r = C.apply(u)
        ones = np.ones(dof_u.n_dofs)
        assert np.isclose(ones @ r, 0.0, atol=1e-10)

    def test_energy_stability_with_noslip(self, setup, rng):
        """u . C(u) >= 0 (up to round-off) for no-slip data — the
        Lax-Friedrichs dissipation makes convection energy-stable."""
        forest, _, geo_over, conn, dof_u, _, _, _ = setup
        mesh_ids = {b.boundary_id for b in conn.boundary}
        bcs = BoundaryConditions({bid: VelocityDirichlet.no_slip() for bid in mesh_ids})
        C = ConvectiveOperator(dof_u, geo_over, conn, bcs)
        # a smooth divergence-free-ish field
        u = interpolate_vector(
            dof_u, forest,
            lambda x, y, z: np.stack([np.sin(np.pi * y), np.sin(np.pi * z), np.sin(np.pi * x)]),
        )
        assert u @ C.apply(u) > -1e-10

    def test_requires_overintegration(self, setup):
        forest, geo, _, conn, dof_u, _, _, bcs = setup
        with pytest.raises(ValueError, match="over-integration"):
            ConvectiveOperator(dof_u, geo, conn, bcs)

    def test_max_reference_velocity(self, setup):
        forest, _, geo_over, conn, dof_u, _, _, bcs = setup
        C = ConvectiveOperator(dof_u, geo_over, conn, bcs)
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([2 + 0 * x, 0 * y, 0 * z]))
        # cells are 0.5 x 0.5 x 1: |J^{-1} u| = 2 / 0.5 = 4
        assert np.isclose(C.max_reference_velocity(u), 4.0, rtol=1e-10)


class TestPenalty:
    def test_divergence_free_field_in_kernel(self, setup):
        forest, geo, _, conn, dof_u, _, _, _ = setup
        P = DivergenceContinuityPenalty(dof_u, geo, conn)
        # rigid rotation: div = 0 and continuous -> penalty-free
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([-y, x, 0 * z]))
        P.tau_div = np.ones(forest.n_cells)
        P.tau_cont = [np.ones(b.n_faces) for b in conn.interior]
        assert np.abs(P.vmult(u)).max() < 1e-10

    def test_spsd(self, setup, rng):
        forest, geo, _, conn, dof_u, _, _, _ = setup
        P = DivergenceContinuityPenalty(dof_u, geo, conn)
        P.tau_div = np.ones(forest.n_cells)
        P.tau_cont = [np.ones(b.n_faces) for b in conn.interior]
        x, y = rng.standard_normal((2, dof_u.n_dofs))
        assert np.isclose(x @ P.vmult(y), y @ P.vmult(x), rtol=1e-10)
        assert x @ P.vmult(x) >= -1e-10

    def test_update_parameters_scales_with_velocity(self, setup):
        forest, geo, _, conn, dof_u, _, _, _ = setup
        P = DivergenceContinuityPenalty(dof_u, geo, conn)
        u1 = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([1 + 0 * x, 0 * y, 0 * z]))
        P.update_parameters(u1)
        tau1 = P.tau_div.copy()
        P.update_parameters(3.0 * u1)
        assert np.allclose(P.tau_div, 3 * tau1, rtol=1e-10)

    def test_penalty_step_reduces_divergence_error(self, setup):
        forest, geo, _, conn, dof_u, _, _, _ = setup
        from repro.solvers.krylov import conjugate_gradient

        mass = MassOperator(dof_u, geo)
        inv_mass = InverseMassOperator(dof_u, geo)
        P = DivergenceContinuityPenalty(dof_u, geo, conn)
        step = PenaltyStepOperator(mass, P)
        # velocity with divergence: u = (x^2, 0, 0)
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([x * x, 0 * y, 0 * z]))
        P.update_parameters(u)
        step.set_dt(1.0)
        res = conjugate_gradient(step, mass.vmult(u), inv_mass, tol=1e-10, max_iter=300)
        assert res.converged
        kern = geo.kernel
        cm = geo.cell_metrics()

        def div_l2(vec):
            uu = dof_u.cell_view(vec)
            g = np.stack([kern.gradients(uu[:, i]) for i in range(3)], axis=1)
            div = np.einsum("cilzyx,cilzyx->czyx", cm.jinv_t, g, optimize=True)
            return np.sqrt((div**2 * cm.jxw).sum())

        assert div_l2(res.x) < div_l2(u)


class TestHelmholtz:
    def test_vector_laplace_componentwise(self, setup, rng):
        forest, geo, _, conn, dof_u, dof_us, _, _ = setup
        scal = DGLaplaceOperator(dof_us, geo, conn, dirichlet_ids=(1,))
        vec = VectorDGLaplace(scal, dof_u)
        x = rng.standard_normal(dof_u.n_dofs)
        y = vec.vmult(x)
        xv = dof_u.cell_view(x)
        yv = dof_u.cell_view(y)
        for c in range(3):
            yc = scal.vmult(dof_us.flat(np.ascontiguousarray(xv[:, c])))
            assert np.allclose(yv[:, c], dof_us.cell_view(yc))

    def test_helmholtz_spd_and_solvable(self, setup, rng):
        forest, geo, _, conn, dof_u, dof_us, _, _ = setup
        from repro.solvers.krylov import conjugate_gradient

        scal = DGLaplaceOperator(dof_us, geo, conn, dirichlet_ids=(1,))
        vec = VectorDGLaplace(scal, dof_u)
        mass = MassOperator(dof_u, geo)
        inv_mass = InverseMassOperator(dof_u, geo)
        H = HelmholtzOperator(mass, vec, nu=0.01)
        H.set_time_factor(100.0)
        b = rng.standard_normal(dof_u.n_dofs)
        res = conjugate_gradient(H, b, inv_mass, tol=1e-9, max_iter=300)
        assert res.converged
        # inverse mass preconditioning should converge fast in the
        # mass-dominated regime (the paper's sub-step preconditioner)
        assert res.n_iterations < 60
