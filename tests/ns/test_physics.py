"""Physics-level validation: conservation, energy stability, diagnostics."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.mesh.generators import bifurcation, box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.ns import (
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    PressureDirichlet,
    SolverSettings,
    TaylorGreenVortex3D,
    VelocityDirichlet,
)
from repro.ns.postprocess import FlowDiagnostics, sample_centerline


class TestFlowDiagnostics:
    def make(self, degree=2):
        forest = Forest(box(subdivisions=(2, 2, 2)))
        geo = GeometryField(forest, degree)
        dof = DGDofHandler(forest, degree, n_components=3)
        return forest, geo, dof, FlowDiagnostics(dof, geo)

    def interpolate(self, dof, forest, fn):
        from repro.core.basis import LagrangeBasis1D

        n = dof.n1
        nodes = LagrangeBasis1D(dof.degree).nodes
        zz, yy, xx = np.meshgrid(nodes, nodes, nodes, indexing="ij")
        ref = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
        out = np.empty((forest.n_cells, 3, n, n, n))
        for c, leaf in enumerate(forest.leaves):
            pts = forest.coarse.map_geometry(leaf.tree, leaf.ref_points(ref))
            out[c] = np.asarray(fn(pts[:, 0], pts[:, 1], pts[:, 2])).reshape(3, n, n, n)
        return dof.flat(out)

    def test_kinetic_energy_of_uniform_flow(self):
        forest, geo, dof, diag = self.make()
        u = self.interpolate(dof, forest, lambda x, y, z: np.stack([2 + 0 * x, 0 * y, 0 * z]))
        assert np.isclose(diag.kinetic_energy(u), 2.0)  # |u|^2/2 = 2
        assert np.isclose(diag.max_velocity(u), 2.0)
        assert np.allclose(diag.momentum(u), [2.0, 0.0, 0.0])

    def test_enstrophy_of_rigid_rotation(self):
        forest, geo, dof, diag = self.make(degree=2)
        # u = omega x r with omega = e_z: curl u = 2 e_z, enstrophy = 2
        u = self.interpolate(dof, forest, lambda x, y, z: np.stack([-y, x, 0 * z]))
        assert np.isclose(diag.enstrophy(u), 2.0, rtol=1e-10)
        assert diag.divergence_l2(u) < 1e-10

    def test_divergence_norm_of_source_flow(self):
        forest, geo, dof, diag = self.make(degree=2)
        u = self.interpolate(dof, forest, lambda x, y, z: np.stack([x, y, z]))
        # div = 3 on the unit cube: L2 norm = 3
        assert np.isclose(diag.divergence_l2(u), 3.0, rtol=1e-10)

    def test_volume(self):
        _, _, _, diag = self.make()
        assert np.isclose(diag.volume(), 1.0)

    def test_sample_centerline(self):
        forest, geo, dof, diag = self.make(degree=2)
        u = self.interpolate(dof, forest, lambda x, y, z: np.stack([x * y, z, 0 * x]))
        pts = np.array([[0.25, 0.5, 0.75], [0.9, 0.9, 0.1]])
        vals = sample_centerline(dof, geo, u, pts)
        assert np.allclose(vals[0], [0.125, 0.75, 0.0], atol=1e-10)
        assert np.allclose(vals[1], [0.81, 0.1, 0.0], atol=1e-10)

    def test_sample_outside_returns_nan(self):
        forest, geo, dof, _ = self.make()
        u = np.zeros(dof.n_dofs)
        vals = sample_centerline(dof, geo, u, np.array([[5.0, 5.0, 5.0]]))
        assert np.all(np.isnan(vals))


class TestEnergyStability:
    def test_confined_tgv_energy_decays(self):
        """Taylor-Green-like initial condition in a no-slip box: the
        kinetic energy must decay monotonically (the DG discretization
        with Lax-Friedrichs convection + penalty stabilization is
        energy-stable — the 'robustness for under-resolved flows' claim
        behind the paper's discretization [20, 25])."""
        mesh = box(lower=(0, 0, 0), upper=(np.pi, np.pi, np.pi),
                   subdivisions=(2, 2, 2), boundary_ids={i: 1 for i in range(6)})
        forest = Forest(mesh)
        tgv = TaylorGreenVortex3D(V0=1.0, L=1.0)
        bcs = BoundaryConditions({1: VelocityDirichlet.no_slip()})
        solver = IncompressibleNavierStokesSolver(
            forest, 2, viscosity=5e-3,  # Re ~ 600: under-resolved here
            bcs=bcs, settings=SolverSettings(solver_tolerance=1e-6, cfl=0.3),
        )
        solver.initialize(lambda x, y, z, t: tgv.velocity(x, y, z))
        diag = FlowDiagnostics(solver.dof_u, solver.geo_u)
        energies = [diag.kinetic_energy(solver.velocity)]
        for _ in range(10):
            solver.step()
            energies.append(diag.kinetic_energy(solver.velocity))
        # finite and decaying (allow 1% numerical wiggle per step)
        assert np.all(np.isfinite(energies))
        for e0, e1 in zip(energies, energies[1:]):
            assert e1 < 1.01 * e0
        assert energies[-1] < energies[0]


class TestPeriodicTaylorGreen:
    def test_tgv_on_torus(self):
        """The classical fully periodic Taylor-Green vortex: energy decays
        and enstrophy grows towards the transition peak — the benchmark
        the ExaDG discretization lineage was validated on."""
        two_pi = 2 * np.pi
        mesh = box(
            lower=(0, 0, 0), upper=(two_pi, two_pi, two_pi),
            subdivisions=(2, 2, 2),
            boundary_ids={0: 10, 1: 11, 2: 20, 3: 21, 4: 30, 5: 31},
        )
        periodic = [(10, 11, (two_pi, 0, 0)), (20, 21, (0, two_pi, 0)),
                    (30, 31, (0, 0, two_pi))]
        solver = IncompressibleNavierStokesSolver(
            Forest(mesh), 3, viscosity=0.01,  # k=2 is too dissipative to
            # see the enstrophy ramp on 8 cells
            bcs=BoundaryConditions({}),
            settings=SolverSettings(solver_tolerance=1e-6, cfl=0.25),
            periodic=periodic,
        )
        tgv = TaylorGreenVortex3D()
        solver.initialize(lambda x, y, z, t: tgv.velocity(x, y, z))
        diag = FlowDiagnostics(solver.dof_u, solver.geo_u)
        e0 = diag.kinetic_energy(solver.velocity)
        z0 = diag.enstrophy(solver.velocity)
        for _ in range(8):
            solver.step()
        e1 = diag.kinetic_energy(solver.velocity)
        z1 = diag.enstrophy(solver.velocity)
        assert np.isfinite(e1) and np.isfinite(z1)
        assert e1 < e0  # dissipation
        assert z1 > 0.9 * z0  # vortex stretching ramps enstrophy up
        # no boundary faces at all on the torus
        assert solver.conn.n_boundary_faces == 0


class TestMassConservation:
    @pytest.mark.slow
    def test_bifurcation_flow_split(self):
        """Pressure-driven flow through the bifurcation: at quasi-steady
        state the inflow balances the sum of the outflows up to a
        discretization error that *shrinks under refinement* (the trace
        fluxes at weakly-imposed openings converge with the mesh; the
        coarse single-cell-across-duct mesh carries ~13%), and both
        daughters carry flow."""
        imbalances = []
        flows = None
        for levels in (0, 1):
            mesh = bifurcation(radius=1.0, parent_length=4.0, child_length=4.0)
            forest = Forest(mesh).refine_all(levels)
            bcs = BoundaryConditions({
                1: PressureDirichlet(1.0),
                2: PressureDirichlet(0.0),
                3: PressureDirichlet(0.0),
            })
            solver = IncompressibleNavierStokesSolver(
                forest, 2, viscosity=1.0,  # strongly viscous: fast settling
                bcs=bcs, settings=SolverSettings(solver_tolerance=1e-8, cfl=0.3,
                                                 dt_max=0.05),
            )
            solver.initialize()
            t_end = 3.0  # several viscous time scales a^2/nu = 1
            while solver.scheme.t < t_end - 1e-10:
                solver.step(min(0.05, t_end - solver.scheme.t))
            q_in = -solver.flow_rate(1)  # inward positive
            q_out2 = solver.flow_rate(2)
            q_out3 = solver.flow_rate(3)
            assert q_in > 0 and q_out2 > 0 and q_out3 > 0
            imbalances.append(abs(q_in - (q_out2 + q_out3)) / q_in)
            flows = (q_in, q_out2, q_out3)
            # walls stay tight (weak no-slip does not leak appreciably)
            assert abs(solver.flow_rate(0)) < 0.02 * q_in
        # the imbalance converges away with resolution
        assert imbalances[1] < 0.75 * imbalances[0]
        assert imbalances[1] < 0.12
        # both daughters carry a comparable share
        q_in, q_out2, q_out3 = flows
        assert 0.2 < q_out2 / (q_out2 + q_out3) < 0.8
