"""Tests of the passive-scalar (gas transport) extension."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.ns.scalar_transport import ScalarAdvectionOperator, ScalarTransportSolver


def make_setup(degree=2, subdivisions=(3, 1, 1), boundary_ids=None):
    mesh = box(
        lower=(0, 0, 0), upper=(3, 1, 1), subdivisions=subdivisions,
        boundary_ids=boundary_ids or {0: 1, 1: 2},
    )
    forest = Forest(mesh)
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof_u = DGDofHandler(forest, degree, n_components=3)
    return forest, geo, conn, dof_u


def interpolate_vector(dof_u, forest, fn):
    from repro.core.basis import LagrangeBasis1D

    n = dof_u.n1
    nodes = LagrangeBasis1D(dof_u.degree).nodes
    zz, yy, xx = np.meshgrid(nodes, nodes, nodes, indexing="ij")
    ref = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
    out = np.empty((forest.n_cells, 3, n, n, n))
    for c, leaf in enumerate(forest.leaves):
        pts = forest.coarse.map_geometry(leaf.tree, leaf.ref_points(ref))
        out[c] = np.asarray(fn(pts[:, 0], pts[:, 1], pts[:, 2])).reshape(3, n, n, n)
    return dof_u.flat(out)


class TestAdvectionOperator:
    def test_constant_concentration_conserved(self):
        """With c = const and closed upwind fluxes, the total advective
        residual against constant tests is the net boundary flux of u —
        zero for a divergence-free through-flow."""
        forest, geo, conn, dof_u = make_setup()
        dof_c = DGDofHandler(forest, 2)
        adv = ScalarAdvectionOperator(dof_c, dof_u, geo, conn,
                                      inflow_values={1: 1.0})
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([1 + 0 * x, 0 * y, 0 * z]))
        c = np.ones(dof_c.n_dofs)
        r = adv.apply(c, u)
        ones = np.ones(dof_c.n_dofs)
        # inflow brings c_in = 1 = interior c: residual integrates to zero
        assert abs(ones @ r) < 1e-10

    def test_zero_velocity_gives_zero(self):
        forest, geo, conn, dof_u = make_setup()
        dof_c = DGDofHandler(forest, 2)
        adv = ScalarAdvectionOperator(dof_c, dof_u, geo, conn)
        rng = np.random.default_rng(0)
        c = rng.standard_normal(dof_c.n_dofs)
        assert np.allclose(adv.apply(c, np.zeros(dof_u.n_dofs)), 0.0)

    def test_mismatched_degrees_raise(self):
        forest, geo, conn, dof_u = make_setup(degree=2)
        dof_c = DGDofHandler(forest, 2)
        dof_u3 = DGDofHandler(forest, 3, n_components=3)
        with pytest.raises(ValueError):
            ScalarAdvectionOperator(dof_c, dof_u3, geo, conn)


class TestTransportSolver:
    def test_washin_approaches_inflow_concentration(self):
        """Fresh-gas wash-in: a channel initially at c = 0 with inflow at
        c = 1 fills up monotonically towards 1 (the O2 wash-in the
        ventilation model predicts)."""
        forest, geo, conn, dof_u = make_setup()
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([1 + 0 * x, 0 * y, 0 * z]))
        solver = ScalarTransportSolver(
            forest, 2, diffusivity=0.01, connectivity=conn, geometry=geo,
            dof_u=dof_u, inflow_values={1: 1.0},
        )
        solver.set_initial(0.0)
        means = [solver.mean_concentration(geo)]
        dt = 0.02  # CFL-safe for u=1, h=1, k=2
        for _ in range(150):
            solver.step(dt, u)
            means.append(solver.mean_concentration(geo))
        assert means[0] == pytest.approx(0.0)
        # monotone fill (small tolerance for DG oscillations)
        for a, b in zip(means, means[1:]):
            assert b > a - 1e-6
        assert means[-1] > 0.6  # 3 time units of transit over length 3

    def test_pure_diffusion_conserves_mass_with_neumann(self):
        forest, geo, conn, dof_u = make_setup(boundary_ids={})
        solver = ScalarTransportSolver(
            forest, 2, diffusivity=0.1, connectivity=conn, geometry=geo,
            dof_u=dof_u,
        )
        # a blob in the first cell
        c = solver.dof_c.cell_view(solver.c)
        c[0] = 1.0
        total0 = solver.mean_concentration(geo)
        u0 = np.zeros(dof_u.n_dofs)
        for _ in range(50):
            solver.step(0.005, u0)
        assert np.isclose(solver.mean_concentration(geo), total0, rtol=1e-10)

    def test_concentration_stays_bounded(self):
        """Upwinding keeps the wash-in solution within [0 - eps, 1 + eps]
        (no blow-up; small DG overshoots allowed)."""
        forest, geo, conn, dof_u = make_setup()
        u = interpolate_vector(dof_u, forest, lambda x, y, z: np.stack([1 + 0 * x, 0 * y, 0 * z]))
        solver = ScalarTransportSolver(
            forest, 2, diffusivity=0.01, connectivity=conn, geometry=geo,
            dof_u=dof_u, inflow_values={1: 1.0},
        )
        solver.set_initial(0.0)
        for _ in range(100):
            solver.step(0.02, u)
        assert solver.c.min() > -0.2
        assert solver.c.max() < 1.2
