"""End-to-end tests of the incompressible Navier-Stokes solver:
analytic-solution accuracy, temporal convergence, divergence control,
and pressure-driven duct flow."""

import numpy as np
import pytest

from repro.mesh.generators import box
from repro.mesh.octree import Forest
from repro.ns import (
    BeltramiFlow,
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    PressureDirichlet,
    SolverSettings,
    StokesDecayFlow,
    VelocityDirichlet,
    poiseuille_square_duct_flow_rate,
)


def beltrami_solver(levels=1, degree=2, nu=0.05, tol=1e-8):
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(levels)
    flow = BeltramiFlow(nu)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
    )
    settings = SolverSettings(solver_tolerance=tol, use_multigrid=True)
    solver = IncompressibleNavierStokesSolver(forest, degree, nu, bcs, settings)
    return solver, flow


class TestBeltrami:
    def test_short_run_accuracy(self):
        solver, flow = beltrami_solver(levels=1, degree=3, nu=0.05)
        solver.initialize(flow.velocity)
        T = 0.05
        n_steps = 10
        for _ in range(n_steps):
            solver.step(T / n_steps)
        err = solver.velocity_error_l2(flow.velocity, solver.scheme.t)
        # reference velocity magnitude is O(1); demand < 1% relative error
        assert err < 1e-2

    def test_temporal_convergence_order2(self):
        """Halving dt reduces the temporal error by ~4x (J = 2)."""
        errors = []
        for n_steps in (8, 16):
            solver, flow = beltrami_solver(levels=1, degree=4, nu=0.1)
            solver.initialize(flow.velocity)
            T = 0.2
            for _ in range(n_steps):
                solver.step(T / n_steps)
            errors.append(solver.velocity_error_l2(flow.velocity, solver.scheme.t))
        rate = np.log2(errors[0] / errors[1])
        assert rate > 1.5, f"temporal rate {rate} below 2nd order"

    def test_spatial_accuracy_improves_with_degree(self):
        errs = []
        for degree in (2, 3):
            solver, flow = beltrami_solver(levels=1, degree=degree, nu=0.05)
            solver.initialize(flow.velocity)
            for _ in range(8):
                solver.step(0.04 / 8)
            errs.append(solver.velocity_error_l2(flow.velocity, solver.scheme.t))
        assert errs[1] < 0.5 * errs[0]

    def test_divergence_stays_small(self):
        solver, flow = beltrami_solver(levels=1, degree=3, nu=0.05)
        solver.initialize(flow.velocity)
        for _ in range(5):
            solver.step(0.005)
        assert solver.max_divergence() < 0.1  # Beltrami velocity scale ~1

    def test_pressure_iterations_moderate(self):
        """With the hybrid multigrid the pressure solve stays at O(10)
        iterations per step (cf. Fig. 9/10 iteration counts)."""
        solver, flow = beltrami_solver(levels=1, degree=3, nu=0.05, tol=1e-6)
        solver.initialize(flow.velocity)
        for _ in range(3):
            st = solver.step(0.005)
        assert st.pressure_iterations <= 20


class TestInitialGuessExtrapolation:
    def test_pressure_iterations_drop_after_startup(self):
        """Section 5.3: coarse (1e-3) tolerances 'are enabled by
        extrapolations to start with accurate initial guesses from
        previous time steps'.  After the first steps the extrapolated
        guess must cut the pressure iteration count."""
        solver, flow = beltrami_solver(levels=1, degree=3, nu=0.05, tol=1e-6)
        solver.initialize(flow.velocity)
        its = []
        for _ in range(6):
            st = solver.step(0.004)
            its.append(st.pressure_iterations)
        assert min(its[2:]) < its[0]
        assert np.mean(its[3:]) <= np.mean(its[:2])


class TestStokesDecay:
    def test_exact_shear_decay(self):
        """u = sin(pi y) e_x decays with exp(-nu pi^2 t); convection and
        pressure vanish identically, isolating the viscous step."""
        nu = 0.1
        mesh = box(subdivisions=(1, 2, 1), boundary_ids={i: 1 for i in range(6)})
        forest = Forest(mesh)
        flow = StokesDecayFlow(nu)
        bcs = BoundaryConditions(
            {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
        )
        solver = IncompressibleNavierStokesSolver(
            forest, 4, nu, bcs, SolverSettings(solver_tolerance=1e-10)
        )
        solver.initialize(flow.velocity)
        T = 0.2
        n = 20
        for _ in range(n):
            solver.step(T / n)
        err = solver.velocity_error_l2(flow.velocity, solver.scheme.t)
        assert err < 5e-4


class TestCFLAdaptivity:
    def test_adaptive_steps_track_velocity(self):
        solver, flow = beltrami_solver(levels=1, degree=2, nu=0.3)
        solver.initialize(flow.velocity)
        stats = solver.run(t_end=0.15, max_steps=200)
        dts = [s.dt for s in stats]
        assert len(dts) >= 3
        # velocity decays (nu d^2 ~ 0.74/s) -> the CFL step grows
        # (the final step is clipped to land exactly on t_end, skip it)
        assert dts[-2] > dts[0]


class TestPressureDrivenDuct:
    @pytest.mark.slow
    def test_flow_rate_matches_series_solution(self):
        """Square duct with pressure drop: steady flow rate must match
        the exact series solution within a few percent — validating the
        pressure-BC code path used by the ventilated lung."""
        a = 0.5  # half width
        L = 2.0
        nu = 1.0  # strongly viscous -> fast settling, laminar
        dp = 1.0
        mesh = box(
            lower=(-a, -a, 0.0),
            upper=(a, a, L),
            subdivisions=(2, 2, 3),
            boundary_ids={4: 1, 5: 2},
        )
        forest = Forest(mesh).refine_all(1)
        bcs = BoundaryConditions(
            {1: PressureDirichlet(dp), 2: PressureDirichlet(0.0)}
        )
        solver = IncompressibleNavierStokesSolver(
            forest, 2, nu, bcs, SolverSettings(solver_tolerance=1e-8, cfl=0.3)
        )
        solver.initialize()
        # settle to steady state (viscous time scale a^2/nu = 0.25)
        t_end = 1.0
        while solver.scheme.t < t_end:
            solver.step(min(0.02, t_end - solver.scheme.t))
        Q = solver.flow_rate(2)  # outlet
        Q_exact = poiseuille_square_duct_flow_rate(dp / L, a, nu)
        assert Q > 0
        assert abs(Q - Q_exact) / Q_exact < 0.08
