"""Tests of the simulated distributed mat-vec: the ghost-sheet protocol
must reproduce the monolithic operator exactly."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import bifurcation, box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.parallel.distributed import DistributedDGLaplace


def make_op(forest, degree=2, dirichlet=(1,)):
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    return DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet)


class TestDistributedMatvec:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 7])
    def test_matches_monolithic_on_box(self, n_ranks, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        dist = DistributedDGLaplace(op, n_ranks)
        x = rng.standard_normal(op.n_dofs)
        y_ref = op.vmult(x)
        y_dist, census = dist.vmult(x)
        assert np.allclose(y_dist, y_ref, atol=1e-11)
        if n_ranks > 1:
            assert census.n_messages > 0
            assert census.bytes_total == census.n_sheets * dist._sheet_bytes

    def test_matches_on_hanging_node_mesh(self, rng):
        f = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1}))
        f = f.refine([f.leaves[0]]).balance()
        op = make_op(f, degree=3)
        dist = DistributedDGLaplace(op, 3)
        x = rng.standard_normal(op.n_dofs)
        y_ref = op.vmult(x)
        y_dist, census = dist.vmult(x)
        assert np.allclose(y_dist, y_ref, atol=1e-10)
        assert census.n_sheets > 0

    def test_matches_on_bifurcation_with_orientations(self, rng):
        forest = Forest(bifurcation())
        op = make_op(forest, degree=2, dirichlet=(1, 2, 3))
        dist = DistributedDGLaplace(op, 4)
        x = rng.standard_normal(op.n_dofs)
        y_ref = op.vmult(x)
        y_dist, _ = dist.vmult(x)
        assert np.allclose(y_dist, y_ref, atol=1e-10)

    def test_single_rank_exchanges_nothing(self):
        forest = Forest(box(subdivisions=(3, 1, 1)))
        op = make_op(forest, dirichlet=())
        dist = DistributedDGLaplace(op, 1)
        x = np.ones(op.n_dofs)
        _, census = dist.vmult(x)
        assert census.n_messages == 0
        assert census.bytes_total == 0

    def test_message_count_matches_partition_pairs(self):
        forest = Forest(box(subdivisions=(4, 1, 1)))
        op = make_op(forest, dirichlet=())
        dist = DistributedDGLaplace(op, 4)
        _, census = dist.vmult(np.ones(op.n_dofs))
        # a 1D chain of 4 ranks: 3 neighbor pairs, both directions
        assert census.n_messages == 6
