"""Tests of partitioning, ghost exchange, machine models, the Flop and
memory models, and the scaling performance model."""

import numpy as np

from repro.core.dof_handler import DGDofHandler
from repro.core.sum_factorization import TensorProductKernel
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.octree import Forest
from repro.parallel import (
    FUGAKU_A64FX,
    SUMMIT_V100,
    SUPERMUC_NG,
    MatvecScalingModel,
    MultigridLevelSpec,
    MultigridSolveModel,
    SimulatedGhostExchange,
    partition_forest,
    partition_stats,
)
from repro.perf import (
    arithmetic_intensity,
    laplace_flops,
    laplace_transfer,
    measured_transfer,
)


class TestPartition:
    def test_balanced_cell_counts(self):
        forest = Forest(box(subdivisions=(4, 2, 2))).refine_all(1)
        for p in (2, 4, 7):
            ranks = partition_forest(forest, p)
            counts = np.bincount(ranks, minlength=p)
            assert counts.sum() == forest.n_cells
            assert counts.max() - counts.min() <= np.ceil(forest.n_cells / p) - np.floor(forest.n_cells / p) + 1

    def test_contiguous_morton_ranges(self):
        forest = Forest(box(subdivisions=(2, 2, 2))).refine_all(1)
        ranks = partition_forest(forest, 4)
        assert np.all(np.diff(ranks) >= 0)  # monotone along curve

    def test_stats_cut_faces(self):
        forest = Forest(box(subdivisions=(2, 1, 1)))
        conn = build_connectivity(forest)
        st = partition_stats(forest, conn, 2)
        assert st.cut_faces == 1
        assert st.max_neighbors() == 1
        assert st.max_cut_faces() == 1

    def test_single_rank_no_cuts(self):
        forest = Forest(box(subdivisions=(3, 2, 1)))
        conn = build_connectivity(forest)
        st = partition_stats(forest, conn, 1)
        assert st.cut_faces == 0

    def test_surface_to_volume_shrinks(self):
        """More ranks -> fewer cells/rank but relatively more cut faces."""
        forest = Forest(box(subdivisions=(4, 4, 4)))
        conn = build_connectivity(forest)
        s2 = partition_stats(forest, conn, 2)
        s8 = partition_stats(forest, conn, 8)
        assert s8.max_cells() < s2.max_cells()
        frac2 = s2.cut_faces / conn.n_interior_faces
        frac8 = s8.cut_faces / conn.n_interior_faces
        assert frac8 > frac2


class TestGhostExchange:
    def test_buffers_match_remote_traces(self, rng):
        forest = Forest(box(subdivisions=(4, 1, 1)))
        conn = build_connectivity(forest)
        degree = 2
        kern = TensorProductKernel(degree)
        ex = SimulatedGhostExchange(forest, conn, 2, degree)
        dof = DGDofHandler(forest, degree)
        u = rng.standard_normal((forest.n_cells,) + (degree + 1,) * 3)
        buffers = ex.exchange(u, kern)
        assert buffers  # there is at least one cut face
        for (ib, e), trace in buffers.items():
            batch = conn.interior[ib]
            direct = kern.face_nodal_trace(u[batch.cells_p[e]], batch.face_p)
            assert np.allclose(trace, direct)

    def test_message_count_positive(self):
        forest = Forest(box(subdivisions=(4, 1, 1)))
        conn = build_connectivity(forest)
        ex = SimulatedGhostExchange(forest, conn, 4, 2)
        assert ex.n_messages() >= 2


class TestFlopAndMemoryModels:
    def test_even_odd_halves_mults(self):
        f_eo = laplace_flops(3, even_odd=True)
        f_plain = laplace_flops(3, even_odd=False)
        assert f_eo.cell < 0.7 * f_plain.cell

    def test_flops_grow_with_degree(self):
        assert laplace_flops(5).cell > laplace_flops(2).cell

    def test_flops_per_dof_reasonable(self):
        """The paper's regime: O(100) Flop per DoF for the DG Laplacian."""
        for k in (2, 3, 4):
            f = laplace_flops(k)
            per_dof = f.cell / (k + 1) ** 3
            assert 30 < per_dof < 1000

    def test_transfer_model_dominated_by_vectors_and_metric(self):
        t = laplace_transfer(3)
        assert t.bytes_per_dof() > 3 * 8  # at least read+write+update
        assert measured_transfer(t).bytes_per_cell > t.bytes_per_cell

    def test_arithmetic_intensity_in_memory_bound_regime(self):
        """Figure 7: all interesting degrees sit left of the Skylake ridge
        (~17 Flop/Byte) — memory bandwidth limits the throughput."""
        for k in range(1, 7):
            f = laplace_flops(k)
            t = laplace_transfer(k)
            # each interior cell owns ~3 of its 6 faces
            ai = arithmetic_intensity(f.cell + 3 * f.inner_face, t.bytes_per_cell)
            assert ai < SUPERMUC_NG.flop_byte_ridge
            assert ai > 0.4  # far above pure streaming too

    def test_intensity_increases_with_degree(self):
        ais = [
            arithmetic_intensity(
                laplace_flops(k).cell + 3 * laplace_flops(k).inner_face,
                laplace_transfer(k).bytes_per_cell,
            )
            for k in (1, 3, 6)
        ]
        assert ais[0] < ais[1] < ais[2]


class TestMachineModels:
    def test_rooflines(self):
        assert SUPERMUC_NG.attainable_flops(1.0) == SUPERMUC_NG.mem_bandwidth
        assert SUPERMUC_NG.attainable_flops(1e3) == SUPERMUC_NG.peak_flops_dp

    def test_bandwidth_ordering(self):
        assert SUMMIT_V100.mem_bandwidth > SUPERMUC_NG.mem_bandwidth
        assert FUGAKU_A64FX.mem_bandwidth > SUPERMUC_NG.mem_bandwidth


class TestScalingModel:
    def test_saturated_throughput_matches_figure6(self):
        m = MatvecScalingModel(degree=3)
        assert np.isclose(m.saturated_throughput(), 1.4e9, rtol=0.01)

    def test_cache_bump(self):
        """Figure 8 right: throughput rises when the working set fits in
        L2+L3, before latency dominates."""
        m = MatvecScalingModel(degree=3)
        sat = m.throughput_per_node(50e6)
        cached = m.throughput_per_node(0.2e6)
        assert cached > 1.5 * sat

    def test_latency_floor_near_1e_minus_4(self):
        """Figure 8: scaling saturates slightly below 1e-4 s."""
        m = MatvecScalingModel(degree=3)
        series = m.strong_scaling(22e6, [2**i for i in range(0, 12)])
        tmin = min(t for _, t, _ in series)
        assert 2e-5 < tmin < 2e-4

    def test_strong_scaling_monotone_then_saturates(self):
        m = MatvecScalingModel(degree=3)
        series = m.strong_scaling(1e9, [8, 64, 512, 4096])
        times = [t for _, t, _ in series]
        assert times[0] > times[1] > times[2]

    def test_orientation_overhead_reduces_throughput(self):
        base = MatvecScalingModel(degree=3)
        lung = MatvecScalingModel(degree=3, face_orientation_overhead=0.25)
        assert lung.saturated_throughput() < base.saturated_throughput()


class TestMultigridModel:
    def make_model(self, fine_dofs=179e6, **kw):
        levels = [
            MultigridLevelSpec(n_dofs=fine_dofs, matvecs=8, degree=3),
            MultigridLevelSpec(n_dofs=fine_dofs / 2.5, matvecs=8, degree=3),
            MultigridLevelSpec(n_dofs=fine_dofs / 20, matvecs=8, degree=1),
            MultigridLevelSpec(n_dofs=fine_dofs / 160, matvecs=8, degree=1),
        ]
        return MultigridSolveModel(levels=levels, **kw)

    def test_vcycle_breakdown_sums(self):
        model = self.make_model()
        parts = model.vcycle_level_times(1024)
        assert np.isclose(sum(parts), model.vcycle_time(1024), rtol=1e-12)

    def test_amg_dominates_at_scale(self):
        """Figure 10: at 1024 nodes the AMG coarse solve is ~45% of the
        V-cycle for the lung case."""
        model = self.make_model(amg_time=3.5e-3)
        parts = model.vcycle_level_times(1024)
        frac_amg = parts[-1] / sum(parts)
        assert 0.25 < frac_amg < 0.7

    def test_fine_levels_dominate_at_small_scale(self):
        model = self.make_model(amg_time=3.5e-3)
        parts = model.vcycle_level_times(64)
        assert (parts[0] + parts[1]) / sum(parts) > 0.5

    def test_solve_time_scales_with_iterations(self):
        model = self.make_model()
        t9 = model.solve_time(9, 512)
        t21 = model.solve_time(21, 512)
        assert np.isclose(t21 / t9, 21 / 9, rtol=0.05)

    def test_bifurcation_solve_reaches_0p1s(self):
        """Figure 9: the bifurcation Poisson solve strong-scales to ~0.1 s
        at tol 1e-10 (9 iterations)."""
        levels = [
            MultigridLevelSpec(n_dofs=1e9, matvecs=8, degree=3),
            MultigridLevelSpec(n_dofs=4e8, matvecs=8, degree=3),
            MultigridLevelSpec(n_dofs=5e7, matvecs=8, degree=1),
            MultigridLevelSpec(n_dofs=6e6, matvecs=8, degree=1),
            MultigridLevelSpec(n_dofs=8e5, matvecs=8, degree=1),
        ]
        model = MultigridSolveModel(levels=levels, amg_time=3e-4)
        times = [model.solve_time(9, p) for p in (256, 1024, 4096, 6400)]
        assert min(times) < 0.2
        assert times[0] > times[-1]
