"""Parallel-correctness battery for the real distributed runtime.

The contract under test (see ``repro.parallel.runtime``): the
rank-decomposed mat-vec — in-process or across a real fork +
shared-memory worker pool — reproduces the monolithic operator
*bitwise* in double precision (canonical accumulation order plus
padded face-batch subsets), within tolerance in single precision
(BLAS sgemm row-blocking rounds subsets differently), and its ghost
exchange reproduces the :class:`~repro.parallel.SimulatedGhostExchange`
census exactly.

The in-process half runs in tier1; tests that fork real worker
processes are marked ``parallel`` (enable with ``--run-parallel``).
"""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import bifurcation, box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.parallel import (
    DistributedDGLaplace,
    InProcessGhostRuntime,
    PartitionPlan,
    WorkerPool,
)
from repro.parallel.runtime import DistributedSolverContext
from repro.solvers import HybridMultigridPreconditioner, conjugate_gradient
from repro.solvers.multigrid import operator_to_dtype
from repro.verification import random_curved_forest


def make_op(forest, degree=2, dirichlet=(1,)):
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    return DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet)


def random_space(rng, degree=2):
    """A randomized curved/hanging-node mesh with a Dirichlet id drawn
    from the boundary ids actually present."""
    forest = random_curved_forest(rng)
    conn = build_connectivity(forest)
    present = sorted({b.boundary_id for b in conn.boundary})
    geo = GeometryField(forest, degree)
    dof = DGDofHandler(forest, degree)
    return DGLaplaceOperator(
        dof, geo, conn, dirichlet_ids=tuple(present[:1])
    )


class TestCensusParity:
    """Real ghost exchange == simulated ghost exchange, message for
    message."""

    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 7])
    def test_box_census_matches_simulated(self, n_ranks, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        x = rng.standard_normal(op.n_dofs)
        _, sim_census = DistributedDGLaplace(op, n_ranks).vmult(x)
        real_census = PartitionPlan(op, n_ranks).census()
        assert real_census.n_messages == sim_census.n_messages
        assert real_census.n_sheets == sim_census.n_sheets
        assert real_census.bytes_total == sim_census.bytes_total
        assert real_census.pairs == sim_census.pairs

    def test_randomized_partitions_census(self, rng):
        for _ in range(6):
            op = random_space(rng)
            n_ranks = int(rng.integers(2, 5))
            x = rng.standard_normal(op.n_dofs)
            _, sim = DistributedDGLaplace(op, n_ranks).vmult(x)
            real = PartitionPlan(op, n_ranks).census()
            assert real.n_messages == sim.n_messages
            assert real.n_sheets == sim.n_sheets
            assert real.bytes_total == sim.bytes_total
            assert real.pairs == sim.pairs

    def test_weighted_partition_census(self, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        weights = rng.uniform(0.5, 2.0, size=forest.n_cells)
        x = rng.standard_normal(op.n_dofs)
        _, sim = DistributedDGLaplace(op, 3, weights=weights).vmult(x)
        real = PartitionPlan(op, 3, weights=weights).census()
        assert real.pairs == sim.pairs
        assert real.bytes_total == sim.bytes_total


class TestInProcessBitwise:
    """The rank-decomposed mat-vec with the full pack/post/interior/
    wait/cut protocol, run sequentially in one process: the bitwise
    oracle the worker pool is then compared against."""

    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 7])
    def test_box_bitwise_fp64(self, n_ranks, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        rt = InProcessGhostRuntime(op, n_ranks)
        x = rng.standard_normal(op.n_dofs)
        assert np.array_equal(rt.vmult(x), op.vmult(x))

    def test_randomized_meshes_bitwise_fp64(self, rng):
        for _ in range(6):
            op = random_space(rng)
            n_ranks = int(rng.integers(2, 5))
            rt = InProcessGhostRuntime(op, n_ranks)
            x = rng.standard_normal(op.n_dofs)
            assert np.array_equal(rt.vmult(x), op.vmult(x))

    def test_hanging_node_mesh_bitwise_fp64(self, rng):
        f = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1}))
        f = f.refine([f.leaves[0]]).balance()
        op = make_op(f, degree=3)
        rt = InProcessGhostRuntime(op, 3)
        x = rng.standard_normal(op.n_dofs)
        assert np.array_equal(rt.vmult(x), op.vmult(x))

    def test_bifurcation_orientations_bitwise_fp64(self, rng):
        op = make_op(Forest(bifurcation()), degree=2, dirichlet=(1, 2, 3))
        rt = InProcessGhostRuntime(op, 4)
        x = rng.standard_normal(op.n_dofs)
        assert np.array_equal(rt.vmult(x), op.vmult(x))

    @pytest.mark.parametrize("members", [1, 3])
    def test_ensemble_axis_bitwise_fp64(self, members, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        rt = InProcessGhostRuntime(op, 3)
        x = rng.standard_normal((members, op.n_dofs))
        assert np.array_equal(rt.vmult(x), op.vmult(x))

    def test_weighted_partition_bitwise_fp64(self, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        weights = rng.uniform(0.5, 2.0, size=forest.n_cells)
        rt = InProcessGhostRuntime(op, 3, weights=weights)
        x = rng.standard_normal(op.n_dofs)
        assert np.array_equal(rt.vmult(x), op.vmult(x))

    def test_fp32_within_tolerance(self, rng):
        # fp32 subsets are *not* bitwise (sgemm row-blocking depends on
        # the GEMM row count); the contract is 1e-5 relative
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op32 = operator_to_dtype(make_op(forest), np.float32)
        for n_ranks in (2, 3, 4):
            rt = InProcessGhostRuntime(op32, n_ranks)
            x = rng.standard_normal(op32.n_dofs).astype(np.float32)
            y_ref = op32.vmult(x)
            y = rt.vmult(x)
            assert y.dtype == y_ref.dtype
            scale = np.abs(y_ref).max()
            assert np.abs(y - y_ref).max() <= 1e-5 * max(scale, 1.0)


@pytest.mark.parallel
class TestWorkerPoolBitwise:
    """The same contract across real fork + shared-memory workers."""

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_pool_vmult_bitwise_fp64(self, n_workers, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        x = rng.standard_normal(op.n_dofs)
        xE = rng.standard_normal((3, op.n_dofs))
        pool = WorkerPool(n_workers)
        pool.register("op", op)
        with pool:
            assert np.array_equal(pool.vmult("op", x), op.vmult(x))
            assert np.array_equal(pool.vmult("op", xE), op.vmult(xE))
            # repeated rounds reuse the shared-memory session
            assert np.array_equal(pool.vmult("op", x), op.vmult(x))

    def test_pool_randomized_mesh_bitwise_fp64(self, rng):
        op = random_space(rng)
        n_workers = int(rng.integers(2, 5))
        x = rng.standard_normal(op.n_dofs)
        pool = WorkerPool(n_workers)
        pool.register("op", op)
        with pool:
            assert np.array_equal(pool.vmult("op", x), op.vmult(x))

    def test_pool_fp32_within_tolerance(self, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op32 = operator_to_dtype(make_op(forest), np.float32)
        x = rng.standard_normal(op32.n_dofs).astype(np.float32)
        y_ref = op32.vmult(x)
        pool = WorkerPool(2)
        pool.register("op", op32)
        with pool:
            y = pool.vmult("op", x)
        scale = max(float(np.abs(y_ref).max()), 1.0)
        assert np.abs(y - y_ref).max() <= 1e-5 * scale

    def test_distributed_cg_bitwise_fp64(self, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        b = rng.standard_normal(op.n_dofs)
        ref = conjugate_gradient(op, b, tol=1e-8, name="ref")
        pool = WorkerPool(2)
        pool.register("op", op)
        with pool:
            from repro.parallel import DistributedOperator

            dist = DistributedOperator(pool, "op", op)
            res = conjugate_gradient(dist, b, tol=1e-8, name="dist")
        assert res.n_iterations == ref.n_iterations
        assert res.residuals == ref.residuals
        assert np.array_equal(res.x, ref.x)

    def test_solver_context_poisson_bitwise_fp64(self, rng):
        forest = Forest(box(subdivisions=(2, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest, degree=2)
        mg = HybridMultigridPreconditioner(op)
        b = rng.standard_normal(op.n_dofs)
        ref = conjugate_gradient(op, b, mg, tol=1e-10, name="ref")
        with DistributedSolverContext(op, mg, n_workers=2) as ctx:
            assert ctx.census.n_messages > 0
            res = conjugate_gradient(ctx.operator, b, mg, tol=1e-10,
                                     name="dist")
        assert res.residuals == ref.residuals
        assert np.array_equal(res.x, ref.x)

    def test_solver_context_restores_serial_operators(self):
        forest = Forest(box(subdivisions=(2, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest, degree=2)
        mg = HybridMultigridPreconditioner(op)
        fine_op = mg.levels[0].operator
        fine_sm = mg.levels[0].smoother.op
        with DistributedSolverContext(
            op, mg, n_workers=2, distribute_single_precision=True
        ) as ctx:
            assert mg.levels[0].operator is not fine_op
            assert ctx.operator.vmult is not None
        assert mg.levels[0].operator is fine_op
        assert mg.levels[0].smoother.op is fine_sm

    def test_worker_metrics_merge(self, rng):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        op = make_op(forest)
        x = rng.standard_normal(op.n_dofs)
        pool = WorkerPool(2)
        pool.register("op", op)
        with pool:
            pool.enable_worker_metrics()
            pool.vmult("op", x)
            merged = pool.collect_worker_metrics()
        by_name = {m["name"]: m for m in merged["metrics"]}
        vm = by_name["repro_parallel_worker_vmults_total"]
        # the associative merge sums both workers' shares of the round
        assert sum(s["value"] for s in vm["samples"]) == 2.0
        phases = by_name["repro_parallel_worker_phase_seconds_total"]
        seen = {s["labels"][0] for s in phases["samples"]}
        assert {"pack", "interior", "wait", "cut",
                "accumulate"} <= seen
