"""Fault-injection tests for the worker pool.

The cleanup invariant under test: whether a round completes or a worker
dies mid-solve, the pool never leaks a ``/dev/shm`` segment — a crash
surfaces as a structured :class:`~repro.parallel.WorkerCrash` after the
pool has torn down every worker process and unlinked every
shared-memory buffer.  The checkpoint half reuses the hidden ``repro
lung --crash-after-step`` hook one layer up: a run killed mid-flight
resumes bit-identically, serial or distributed.
"""

import glob
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.parallel import CRASH_EXIT_CODE, WorkerCrash, WorkerPool

pytestmark = pytest.mark.parallel

REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def make_op(forest, degree=2, dirichlet=(1,)):
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    return DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet)


def shm_segments(prefix: str) -> list[str]:
    return glob.glob(f"/dev/shm/{prefix}*")


@pytest.fixture
def pool_op():
    forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
    return make_op(forest)


class TestWorkerCrash:
    @pytest.mark.parametrize("when", ["before_post", "after_post"])
    def test_crash_raises_structured_error(self, when, pool_op, rng):
        x = rng.standard_normal(pool_op.n_dofs)
        pool = WorkerPool(2)
        pool.register("op", pool_op)
        pool.start()
        pool.vmult("op", x)  # the first round maps the session buffers
        assert shm_segments(pool.shm_prefix) != []
        pool.inject_crash(1, when=when)
        with pytest.raises(WorkerCrash) as exc:
            pool.vmult("op", x)
        assert exc.value.rank == 1
        # the exit code is the --crash-after-step convention when the
        # reaper caught it in time (it can lag the pipe hangup)
        assert exc.value.exitcode in (CRASH_EXIT_CODE, None)

    @pytest.mark.parametrize("when", ["before_post", "after_post"])
    def test_crash_releases_all_shared_memory(self, when, pool_op, rng):
        x = rng.standard_normal(pool_op.n_dofs)
        pool = WorkerPool(3)
        pool.register("op", pool_op)
        pool.start()
        pool.vmult("op", x)
        pool.vmult("op", rng.standard_normal((2, pool_op.n_dofs)))
        assert len(shm_segments(pool.shm_prefix)) > 1
        pool.inject_crash(0, when=when)
        with pytest.raises(WorkerCrash):
            pool.vmult("op", x)
        assert shm_segments(pool.shm_prefix) == []
        # every worker process is gone, not just the crashed one
        assert all(not p.is_alive() for p in pool._procs)

    def test_crashed_pool_rejects_further_work(self, pool_op, rng):
        x = rng.standard_normal(pool_op.n_dofs)
        pool = WorkerPool(2)
        pool.register("op", pool_op)
        pool.start()
        pool.inject_crash(0)
        with pytest.raises(WorkerCrash):
            pool.vmult("op", x)
        with pytest.raises(RuntimeError, match="closed"):
            pool.vmult("op", x)

    def test_healthy_close_releases_shared_memory(self, pool_op, rng):
        x = rng.standard_normal(pool_op.n_dofs)
        pool = WorkerPool(2)
        pool.register("op", pool_op)
        with pool:
            pool.vmult("op", x)
            assert shm_segments(pool.shm_prefix) != []
        assert shm_segments(pool.shm_prefix) == []
        pool.close()  # idempotent


class TestCrashResumeDistributed:
    """A checkpointed distributed run killed mid-flight resumes
    bit-identically — and the resumed run may switch between serial and
    distributed execution, because fp64 steps are bitwise either way."""

    def _run(self, tmp_path, args, check=True):
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_SRC), PYTHONHASHSEED="0")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=tmp_path, env=env, capture_output=True, text=True,
            timeout=600,
        )
        if check and proc.returncode != 0:
            raise AssertionError(
                f"repro {' '.join(args)} -> rc {proc.returncode}\n"
                f"{proc.stdout}\n{proc.stderr}"
            )
        return proc

    @staticmethod
    def _steps(path):
        with open(path) as f:
            recs = [json.loads(line) for line in f]
        return [r for r in recs if r.get("type") == "step"]

    def test_killed_distributed_run_resumes_bit_identically(self, tmp_path):
        base = ["lung", "--steps", "4", "--generations", "1",
                "--checkpoint-every", "2", "--checkpoint-keep", "3"]
        # reference: 4 uninterrupted serial steps
        self._run(tmp_path, base + [
            "--checkpoint-dir", str(tmp_path / "ck-ref"),
            "--log-file", str(tmp_path / "ref.jsonl"),
        ])
        # distributed run killed right after step 2 (os._exit, no cleanup)
        proc = self._run(tmp_path, base + [
            "--workers", "2",
            "--checkpoint-dir", str(tmp_path / "ck-crash"),
            "--crash-after-step", "2",
        ], check=False)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        # resume the remaining 2 steps, again distributed
        self._run(tmp_path, [
            "lung", "--steps", "2", "--generations", "1", "--workers", "2",
            "--checkpoint-every", "2", "--checkpoint-keep", "3",
            "--checkpoint-dir", str(tmp_path / "ck-crash"),
            "--resume", "latest",
            "--log-file", str(tmp_path / "resumed.jsonl"),
        ])
        ref = self._steps(tmp_path / "ref.jsonl")[-2:]
        res = self._steps(tmp_path / "resumed.jsonl")
        assert len(res) == 2
        for a, b in zip(ref, res):
            for key in ("t", "dt", "iterations", "inflow_m3_s",
                        "tidal_volume_ml"):
                assert a[key] == b[key], (key, a[key], b[key])
        # the checkpoints written before the kill match the serial ones
        with np.load(tmp_path / "ck-ref" / "ckpt-00000001.npz") as A, \
                np.load(tmp_path / "ck-crash" / "ckpt-00000001.npz") as B:
            for k in A.files:
                if k == "config_json":
                    continue
                assert np.array_equal(A[k], B[k]), f"field {k} differs"
