"""Perfmodel-validation smoke: the measured multi-worker wall-times of
``bench --suite scaling`` against the calibrated α-β model.

The model is calibrated from the measured serial time inside the suite,
so its multi-worker predictions isolate the partition/communication/
overlap terms.  The tolerance band is *core-aware*: on an
oversubscribed host (``available_cores < workers``, the usual CI and
container situation) real speedup is physically capped at ~1x and the
band degrades to a sanity check, while on a genuinely parallel host the
measured 2-worker speedup must land within a generous log-space band of
the core-capped prediction.
"""

import math

import numpy as np
import pytest

from repro.perf.bench import run_suite

pytestmark = pytest.mark.parallel

#: |log2(measured / expected)| allowed between the measured 2-worker
#: speedup and the core-capped model prediction.  Generous: the model
#: carries no pool-dispatch latency term and CI hardware is noisy.
LOG2_BAND = 1.5


@pytest.fixture(scope="module")
def scaling_doc():
    return run_suite("scaling", smoke=True, degree=3)


def _by_workers(doc):
    return {c["meta"]["workers"]: c for c in doc["cases"]}


class TestScalingSuite:
    def test_document_shape(self, scaling_doc):
        assert scaling_doc["suite"] == "scaling"
        cases = _by_workers(scaling_doc)
        assert set(cases) == {1, 2, 4}
        for c in cases.values():
            assert c["metrics"]["best_seconds"] > 0
            assert c["meta"]["predicted_seconds"] > 0
            assert c["meta"]["available_cores"] >= 1

    def test_serial_prediction_is_anchored(self, scaling_doc):
        w1 = _by_workers(scaling_doc)[1]
        # the model is re-anchored so its 1-worker prediction equals the
        # measured serial time (the multi-worker cases then test only
        # the scaling terms)
        assert w1["meta"]["predicted_seconds"] == pytest.approx(
            w1["metrics"]["best_seconds"], rel=1e-12
        )

    def test_multiworker_cases_record_real_exchange(self, scaling_doc):
        for w in (2, 4):
            meta = _by_workers(scaling_doc)[w]["meta"]
            assert meta["n_messages"] >= 2
            assert meta["ghost_bytes"] > 0
            assert meta["max_neighbors"] >= 1
            assert meta["measured_speedup"] > 0
            assert meta["predicted_speedup"] > 1.0

    def test_measured_2worker_speedup_within_band(self, scaling_doc):
        meta = _by_workers(scaling_doc)[2]["meta"]
        cores = meta["available_cores"]
        measured = meta["measured_speedup"]
        # the model assumes one core per worker; cap its prediction by
        # the parallelism the host can actually deliver
        expected = meta["predicted_speedup"] * min(cores, 2) / 2.0
        if cores < 2:
            # oversubscribed: speedup is capped at ~1x by construction;
            # require only that the pool is not pathologically slow
            assert measured > 0.02, meta
            assert measured < 1.5, meta
        else:
            band = abs(math.log2(measured / expected))
            assert band <= LOG2_BAND, (
                f"measured {measured:.2f}x vs core-capped prediction "
                f"{expected:.2f}x (|log2| = {band:.2f} > {LOG2_BAND})"
            )

    def test_speedups_are_consistent(self, scaling_doc):
        cases = _by_workers(scaling_doc)
        t1 = cases[1]["metrics"]["best_seconds"]
        for w in (2, 4):
            c = cases[w]
            assert c["meta"]["measured_speedup"] == pytest.approx(
                t1 / c["metrics"]["best_seconds"], rel=1e-9
            )
            assert np.isfinite(c["throughput"])
