"""Tests of the cross-process timeline tracing stack.

Tier-1 half: the :class:`~repro.telemetry.timeline.TimelineRing` event
ring over a plain buffer (record/drain round-trip, overflow accounting,
allocation-free hot path), the merge/export/analysis pipeline on
synthetic hand-computed timelines, and the Chrome trace-event JSON
round-trip.  Tests that fork a real traced worker pool are marked
``parallel`` (enable with ``--run-parallel``): the full contract there
is that tracing observes without perturbing — the traced mat-vec stays
bitwise identical to the serial operator — while every protocol round
leaves a complete six-phase event record per rank.
"""

import json
import tracemalloc

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.parallel import WorkerPool
from repro.parallel.runtime import DistributedSolverContext, PartitionPlan
from repro.telemetry import TRACER
from repro.telemetry.metrics import merge_snapshots
from repro.telemetry.timeline import (
    EVENT_DTYPE,
    PHASE_ID,
    PHASE_NAMES,
    PHASES,
    TIMELINE_SCHEMA,
    TimelineRing,
    analyze_timeline,
    chrome_trace_doc,
    load_chrome_trace,
    merge_timeline,
    render_timeline,
    render_worker_phases,
    write_chrome_trace,
)


def make_op(forest, degree=2, dirichlet=(1,)):
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    return DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet)


def make_ring(capacity=16):
    return TimelineRing(bytearray(TimelineRing.nbytes(capacity)))


class TestTimelineRing:
    def test_capacity_from_buffer(self):
        ring = make_ring(10)
        assert ring.capacity == 10
        # page-rounded segments (a larger buffer than requested) must
        # still give master and worker the same capacity
        padded = TimelineRing(bytearray(TimelineRing.nbytes(10) + 3))
        assert padded.capacity == 10
        with pytest.raises(ValueError):
            TimelineRing(bytearray(4))

    def test_record_drain_round_trip(self):
        ring = make_ring(16)
        ring.record(0, PHASE_ID["pack"], 1.0, 2.0)
        ring.record(0, PHASE_ID["send"], 1.25, 1.5, peer=3)
        ring.record(1, PHASE_ID["wait"], 2.0, 2.5)
        events, cursor, dropped = ring.drain(0)
        assert cursor == 3 and dropped == 0
        assert events.dtype == EVENT_DTYPE
        assert [PHASE_NAMES[p] for p in events["phase"]] == [
            "pack", "send", "wait",
        ]
        assert list(events["round"]) == [0, 0, 1]
        assert list(events["peer"]) == [-1, 3, -1]
        assert list(events["t0"]) == [1.0, 1.25, 2.0]
        assert list(events["t1"]) == [2.0, 1.5, 2.5]
        # incremental drain from the returned cursor sees only new events
        ring.record(2, PHASE_ID["cut"], 3.0, 4.0)
        events, cursor, dropped = ring.drain(cursor)
        assert len(events) == 1 and cursor == 4 and dropped == 0
        assert PHASE_NAMES[int(events["phase"][0])] == "cut"

    def test_overflow_drops_oldest(self):
        ring = make_ring(4)
        for i in range(10):
            ring.record(i, PHASE_ID["interior"], float(i), float(i) + 0.5)
        assert ring.cursor == 10  # monotonic, not capped
        events, cursor, dropped = ring.drain(0)
        assert cursor == 10 and dropped == 6
        # the survivors are the newest `capacity` events, in order
        assert list(events["round"]) == [6, 7, 8, 9]

    def test_wraparound_preserves_order(self):
        ring = make_ring(4)
        for i in range(6):  # cursor wraps: events 2..5 live at slots 2,3,0,1
            ring.record(i, PHASE_ID["pack"], float(i), float(i + 1))
        events, _, dropped = ring.drain(2)
        assert dropped == 0
        assert list(events["round"]) == [2, 3, 4, 5]

    def test_clear_resets_cursor(self):
        ring = make_ring(4)
        ring.record(0, 0, 0.0, 1.0)
        ring.clear()
        assert ring.cursor == 0
        events, _, _ = ring.drain(0)
        assert len(events) == 0

    def test_record_is_allocation_free(self):
        ring = make_ring(64)
        ring.record(0, 1, 0.0, 1.0)  # warm any lazy numpy machinery
        tracemalloc.start()
        try:
            for i in range(200):
                ring.record(i, PHASE_ID["wait"], 0.5, 1.5, peer=1)
            current, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert current == 0, f"record() allocated {current} bytes"


def ev(rank, rnd, phase, t0, t1, peer=-1):
    return {"rank": rank, "round": rnd, "phase": phase, "peer": peer,
            "t0": t0, "t1": t1}


def synthetic_round(rank, rnd, base, interior, wait):
    """One rank's six-phase round starting at ``base`` with the given
    interior/wait seconds (the other phases get fixed small times)."""
    t = base
    out = []
    for phase, dur in (("pack", 0.01), ("post", 0.002),
                       ("interior", interior), ("wait", wait),
                       ("cut", 0.03), ("accumulate", 0.005)):
        out.append(ev(rank, rnd, phase, t, t + dur))
        t += dur
    return out


class TestMergeTimeline:
    def test_offsets_and_rebase(self):
        a = np.zeros(2, dtype=EVENT_DTYPE)
        a["round"] = [0, 0]
        a["phase"] = [PHASE_ID["pack"], PHASE_ID["interior"]]
        a["peer"] = -1
        a["t0"], a["t1"] = [100.0, 101.0], [101.0, 102.0]
        b = np.zeros(1, dtype=EVENT_DTYPE)
        b["phase"] = PHASE_ID["pack"]
        b["peer"] = -1
        # rank 1's clock runs 50 s ahead of the master
        b["t0"], b["t1"] = 150.5, 151.5
        merged = merge_timeline({0: [a], 1: [b]}, offsets={1: 50.0})
        assert [e["rank"] for e in merged] == [0, 1, 0]
        # rebased to t=0 on the common (master) clock
        assert merged[0]["t0"] == 0.0
        assert merged[1]["t0"] == pytest.approx(0.5)
        assert merged[2]["t0"] == pytest.approx(1.0)

    def test_multiple_chunks_per_rank(self):
        chunks = []
        for start in (0.0, 10.0):
            c = np.zeros(1, dtype=EVENT_DTYPE)
            c["phase"] = PHASE_ID["wait"]
            c["peer"] = -1
            c["t0"], c["t1"] = start, start + 1.0
            chunks.append(c)
        merged = merge_timeline({0: chunks}, rebase=False)
        assert [e["t0"] for e in merged] == [0.0, 10.0]
        assert all(e["phase"] == "wait" for e in merged)


class TestChromeTrace:
    def timeline(self):
        events = synthetic_round(0, 0, 0.0, 0.5, 0.01)
        events += synthetic_round(1, 0, 0.001, 0.4, 0.11)
        # a matched send/unpack pair gets a flow arrow
        events.append(ev(0, 0, "send", 0.002, 0.008, peer=1))
        events.append(ev(1, 0, "unpack", 0.55, 0.56, peer=0))
        events.sort(key=lambda e: (e["t0"], e["rank"], e["t1"]))
        return events

    def test_document_schema(self):
        doc = chrome_trace_doc(self.timeline(), meta={"note": "x"})
        assert doc["metadata"]["schema"] == TIMELINE_SCHEMA
        assert doc["metadata"]["note"] == "x"
        te = doc["traceEvents"]
        names = {e["name"] for e in te if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= names
        slices = [e for e in te if e["ph"] == "X"]
        assert len(slices) == len(self.timeline())
        for s in slices:
            assert set(s) >= {"name", "pid", "tid", "ts", "dur", "args"}
            assert s["dur"] >= 0.0
        assert {s["tid"] for s in slices} == {0, 1}

    def test_flow_arrow_connects_send_to_unpack(self):
        te = chrome_trace_doc(self.timeline())["traceEvents"]
        starts = [e for e in te if e["ph"] == "s"]
        finishes = [e for e in te if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["tid"] == 0 and finishes[0]["tid"] == 1

    def test_round_trip_is_bit_exact(self, tmp_path):
        events = self.timeline()
        path = write_chrome_trace(tmp_path / "trace.json",
                                  events, meta={"k": 1})
        loaded, meta = load_chrome_trace(path)
        assert meta["schema"] == TIMELINE_SCHEMA and meta["k"] == 1
        assert loaded == sorted(
            events, key=lambda e: (e["t0"], e["rank"], e["t1"])
        )
        # and the analysis of the loaded trace is exactly reproducible
        assert analyze_timeline(loaded) == analyze_timeline(events)

    def test_load_rejects_non_trace(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_chrome_trace(p)


class TestAnalyzeTimeline:
    def test_hand_computed_round(self):
        # rank 0: interior 0.5 s, wait 0.01 s; rank 1: 0.4 s / 0.11 s
        events = synthetic_round(0, 0, 0.0, 0.5, 0.01)
        events += synthetic_round(1, 0, 0.0, 0.4, 0.11)
        a = analyze_timeline(events)
        assert a["schema"] == TIMELINE_SCHEMA
        assert a["n_ranks"] == 2 and a["n_rounds"] == 1
        assert a["n_events"] == 12 and a["dropped_events"] == 0
        (r,) = a["rounds"]
        assert r["wait_fraction"] == pytest.approx(0.12 / 1.02)
        assert r["overlap_efficiency"] == pytest.approx(1 - 0.12 / 1.02)
        assert r["imbalance"] == pytest.approx(0.5 / 0.45)
        # critical path: the slower rank's chain minus its wait
        per_rank_chain = 0.01 + 0.002 + 0.03 + 0.005
        assert r["critical_path_s"] == pytest.approx(per_rank_chain + 0.5)
        assert r["max_wait_rank"] == 1
        assert r["max_wait_s"] == pytest.approx(0.11)
        t = a["totals"]
        assert t["wait_fraction"] == pytest.approx(r["wait_fraction"])
        assert t["interior_s"] == pytest.approx(0.9)
        assert t["wait_s"] == pytest.approx(0.12)
        assert t["phase_seconds"]["pack"] == pytest.approx(0.02)
        assert set(t["per_rank"]) == {"0", "1"}
        assert t["per_rank"]["1"]["phase_seconds"]["wait"] == pytest.approx(0.11)

    def test_totals_aggregate_over_rounds(self):
        events = []
        for rnd in range(3):
            events += synthetic_round(0, rnd, rnd * 2.0, 0.5, 0.1)
            events += synthetic_round(1, rnd, rnd * 2.0, 0.5, 0.1)
        a = analyze_timeline(events, dropped_events=7)
        assert a["n_rounds"] == 3 and a["dropped_events"] == 7
        t = a["totals"]
        assert t["interior_s"] == pytest.approx(3.0)
        assert t["critical_path_s"] == pytest.approx(
            sum(r["critical_path_s"] for r in a["rounds"])
        )
        assert t["stall_speedup_bound"] == pytest.approx(
            t["wall_s"] / t["critical_path_s"]
        )
        assert t["per_rank"]["0"]["rounds"] == 3

    def test_rank_bytes_bandwidth(self):
        events = synthetic_round(0, 0, 0.0, 0.5, 0.1)
        events.append(ev(0, 0, "unpack", 0.62, 0.64, peer=1))
        # str keys (the JSON round-tripped form) must work too
        for rb in ({0: {"send": 1000, "recv": 500}},
                   {"0": {"send": 1000, "recv": 500}}):
            a = analyze_timeline(events, rank_bytes=rb)
            info = a["totals"]["per_rank"]["0"]
            assert info["exchange_bytes_per_round"] == 1500.0
            assert info["exchange_bytes_total"] == 1500.0
            comm = 0.01 + 0.002 + 0.1 + 0.02  # pack + post + wait + unpack
            assert info["exchange_seconds"] == pytest.approx(comm)
            assert info["achieved_gb_s"] == pytest.approx(1500.0 / comm / 1e9)
            assert info["detail_seconds"]["unpack"] == pytest.approx(0.02)

    def test_empty_timeline(self):
        a = analyze_timeline([])
        assert a["n_ranks"] == 0 and a["rounds"] == []
        assert a["totals"]["wait_fraction"] == 0.0

    def test_json_round_trip_is_exact(self):
        events = synthetic_round(0, 0, 0.0, 0.31415, 0.00271)
        a = analyze_timeline(events)
        assert json.loads(json.dumps(a)) == a


class TestRendering:
    def test_render_timeline(self):
        events = synthetic_round(0, 0, 0.0, 0.5, 0.01)
        events += synthetic_round(1, 0, 0.0, 0.4, 0.11)
        text = render_timeline(
            analyze_timeline(events, rank_bytes={0: {"send": 8, "recv": 8}})
        )
        assert "distributed timeline: 2 ranks, 1 rounds" in text
        assert "overlap efficiency" in text
        assert "critical path" in text
        assert "rank 0" in text and "GB/s" in text
        assert "worst rounds by wait fraction" in text

    def test_render_timeline_reports_drops(self):
        a = analyze_timeline(synthetic_round(0, 0, 0.0, 0.1, 0.0),
                             dropped_events=5)
        assert "(5 dropped)" in render_timeline(a)

    def test_render_worker_phases(self):
        text = render_worker_phases(
            {"0": {"pack": 0.1, "interior": 0.7, "wait": 0.2},
             "1": {"pack": 0.2, "interior": 0.6, "wait": 0.2}}
        )
        assert "worker phases" in text
        assert "rank 0: pack 10.0%  interior 70.0%  wait 20.0%" in text
        assert "rank 1" in text
        assert render_worker_phases({}) == ""
        assert render_worker_phases({"0": {"pack": 0.0}}) == ""


@pytest.mark.parallel
class TestTracedWorkerPool:
    """A real fork + shared-memory pool with timeline tracing on."""

    def pool_op(self):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        return make_op(forest)

    def test_traced_vmult_bitwise_and_complete(self, rng):
        op = self.pool_op()
        x = rng.standard_normal(op.n_dofs)
        pool = WorkerPool(2, trace_timeline=True)
        pool.register("op", op)
        with pool:
            for _ in range(3):
                assert np.array_equal(pool.vmult("op", x), op.vmult(x))
            events = pool.timeline_events()
            offsets = dict(pool.clock_offsets)
            rtts = dict(pool.clock_rtts)
        assert pool.timeline_dropped == 0
        # every (round, rank) carries the full six-phase record
        seen = {}
        for e in events:
            if e["phase"] in PHASES:
                seen.setdefault((e["round"], e["rank"]), set()).add(e["phase"])
        rounds = sorted({r for r, _ in seen})
        assert len(rounds) == 3
        assert set(seen) == {(r, w) for r in rounds for w in range(2)}
        assert all(phases == set(PHASES) for phases in seen.values())
        # phases partition the round: per (round, rank) they abut and
        # sum to the rank's round span (the worker-side invariant)
        for (rnd, rank) in seen:
            span = [e for e in events
                    if e["round"] == rnd and e["rank"] == rank
                    and e["phase"] in PHASES]
            span.sort(key=lambda e: e["t0"])
            total = sum(e["t1"] - e["t0"] for e in span)
            wall = span[-1]["t1"] - span[0]["t0"]
            assert total == pytest.approx(wall, rel=1e-6, abs=1e-9)
        # forked workers share CLOCK_MONOTONIC: offsets are pipe noise
        assert set(offsets) == {0, 1}
        assert all(abs(v) < 0.05 for v in offsets.values())
        assert all(v > 0 for v in rtts.values())
        analysis = analyze_timeline(events)
        assert analysis["n_rounds"] == 3 and analysis["n_ranks"] == 2
        assert 0.0 <= analysis["totals"]["wait_fraction"] <= 1.0

    def test_traced_ensemble_vmult_bitwise(self, rng):
        op = self.pool_op()
        xE = rng.standard_normal((3, op.n_dofs))
        pool = WorkerPool(2, trace_timeline=True)
        pool.register("op", op)
        with pool:
            assert np.array_equal(pool.vmult("op", xE), op.vmult(xE))
            assert len(pool.timeline_events()) > 0

    def test_tracing_off_creates_no_timeline_segments(self, rng):
        import glob
        op = self.pool_op()
        pool = WorkerPool(2)
        pool.register("op", op)
        with pool:
            pool.vmult("op", rng.standard_normal(op.n_dofs))
            assert glob.glob(f"/dev/shm/{pool.shm_prefix}*tl*") == []
            assert pool.timeline_events() == []

    def test_tiny_ring_reports_drops(self, rng):
        op = self.pool_op()
        x = rng.standard_normal(op.n_dofs)
        # one round on 2 ranks writes >6 events per rank; capacity 4
        # must overflow and be accounted, never crash
        pool = WorkerPool(2, trace_timeline=True, timeline_capacity=4)
        pool.register("op", op)
        with pool:
            assert np.array_equal(pool.vmult("op", x), op.vmult(x))
            assert pool.timeline_dropped > 0
            a = analyze_timeline(pool.timeline_events(),
                                 dropped_events=pool.timeline_dropped)
        assert a["dropped_events"] == pool.timeline_dropped

    def test_rank_exchange_bytes(self, rng):
        op = self.pool_op()
        pool = WorkerPool(2, trace_timeline=True)
        pool.register("op", op)
        with pool:
            pool.vmult("op", rng.standard_normal(op.n_dofs))
            rb = pool.rank_exchange_bytes()
        plan_rb = PartitionPlan(op, 2).rank_exchange_bytes()
        assert rb == plan_rb
        assert all(v["send"] > 0 and v["recv"] > 0 for v in rb.values())

    def test_tracer_worker_subspans(self, rng):
        op = self.pool_op()
        x = rng.standard_normal(op.n_dofs)
        pool = WorkerPool(2)
        pool.register("op", op)
        TRACER.reset()
        TRACER.enable()
        try:
            with pool, TRACER.span("solve"):
                pool.vmult("op", x)
                pool.vmult("op", x)
        finally:
            TRACER.disable()
        solve = TRACER.root.children["solve"]
        workers = solve.children["workers"]
        assert workers.count == 2
        assert workers.total > 0
        for r in range(2):
            rank = workers.children[f"rank{r}"]
            assert set(rank.children) == set(PHASES)
            assert rank.total == pytest.approx(
                sum(c.total for c in rank.children.values())
            )


@pytest.mark.parallel
class TestMergedWorkerTelemetry:
    """Satellite battery: merged per-worker metrics under ensemble
    inputs, session reuse, and associative merging across pool
    restarts after a worker crash."""

    def pool_op(self):
        forest = Forest(box(subdivisions=(4, 2, 1), boundary_ids={0: 1}))
        return make_op(forest)

    def merged(self, pool):
        doc = pool.collect_worker_metrics()
        return doc, {m["name"]: m for m in doc["metrics"]}

    def test_post_phase_and_spin_histogram(self, rng):
        op = self.pool_op()
        pool = WorkerPool(2)
        pool.register("op", op)
        with pool:
            pool.enable_worker_metrics()
            pool.vmult("op", rng.standard_normal(op.n_dofs))
            _, by_name = self.merged(pool)
        phases = by_name["repro_parallel_worker_phase_seconds_total"]
        seen = {s["labels"][0] for s in phases["samples"]}
        assert seen == set(PHASES)  # completeness: post included
        spins = by_name["repro_parallel_ghost_wait_spins"]
        srcs = {s["labels"][0] for s in spins["samples"]}
        assert srcs == {"0", "1"}  # each worker waited on its peer
        # histogram merge carries per-source counts: one wait per round
        counts = {s["labels"][0]: s["count"] for s in spins["samples"]}
        assert counts == {"0": 1, "1": 1}

    def test_ensemble_rounds_merge(self, rng):
        op = self.pool_op()
        pool = WorkerPool(2)
        pool.register("op", op)
        with pool:
            pool.enable_worker_metrics()
            pool.vmult("op", rng.standard_normal((3, op.n_dofs)))
            _, by_name = self.merged(pool)
        vm = by_name["repro_parallel_worker_vmults_total"]
        # one round regardless of the ensemble width; both workers count
        assert sum(s["value"] for s in vm["samples"]) == 2.0

    def test_session_reuse_accumulates(self, rng):
        op = self.pool_op()
        x = rng.standard_normal(op.n_dofs)
        pool = WorkerPool(2)
        pool.register("op", op)
        with pool:
            pool.enable_worker_metrics()
            for _ in range(3):
                pool.vmult("op", x)
            _, by_name = self.merged(pool)
            totals = pool.worker_phase_totals()
        vm = by_name["repro_parallel_worker_vmults_total"]
        assert sum(s["value"] for s in vm["samples"]) == 6.0
        assert set(totals) == {"0", "1"}
        for phases in totals.values():
            assert set(phases) == set(PHASES)
            assert phases["interior"] > 0

    def test_merge_across_pool_restart_is_associative(self, rng):
        from repro.parallel import WorkerCrash
        op = self.pool_op()
        x = rng.standard_normal(op.n_dofs)
        docs = []
        pool = WorkerPool(2)
        pool.register("op", op)
        pool.start()
        try:
            pool.enable_worker_metrics()
            pool.vmult("op", x)
            docs.append(pool.collect_worker_metrics())
            pool.inject_crash(1)
            with pytest.raises(WorkerCrash):
                pool.vmult("op", x)
        finally:
            pool.close()
        # a fresh pool after the crash: its snapshots merge with the
        # dead pool's, and the reduction is associative
        pool = WorkerPool(2)
        pool.register("op", op)
        with pool:
            pool.enable_worker_metrics()
            pool.vmult("op", x)
            pool.vmult("op", x)
            docs.append(pool.collect_worker_metrics())
        merged = merge_snapshots(docs)
        left = merge_snapshots([docs[0], merge_snapshots([docs[1]])])
        assert merged["metrics"] == left["metrics"]
        by_name = {m["name"]: m for m in merged["metrics"]}
        vm = by_name["repro_parallel_worker_vmults_total"]
        assert sum(s["value"] for s in vm["samples"]) == 6.0


@pytest.mark.parallel
class TestDistributedLungCLI:
    def test_metrics_file_includes_worker_series(self, tmp_path, capsys):
        from repro.cli import main
        from repro.telemetry.metrics import parse_prometheus

        prom = tmp_path / "m.prom"
        assert main(["lung", "--steps", "1", "--generations", "1",
                     "--workers", "2", "--metrics-file", str(prom)]) == 0
        text = prom.read_text()
        doc = parse_prometheus(text)
        by_name = {m["name"]: m for m in doc["metrics"]}
        spins = by_name["repro_parallel_ghost_wait_spins"]
        assert {s["labels"][0] for s in spins["samples"]} == {"0", "1"}
        phases = by_name["repro_parallel_worker_phase_seconds_total"]
        assert {s["labels"][0] for s in phases["samples"]} >= set(PHASES)
        vm = by_name["repro_parallel_worker_vmults_total"]
        assert sum(s["value"] for s in vm["samples"]) > 0


@pytest.mark.parallel
class TestDistributedContextTimeline:
    def test_context_exposes_timeline(self, rng):
        op = make_op(Forest(box(subdivisions=(4, 2, 1),
                                boundary_ids={0: 1})))
        b = rng.standard_normal(op.n_dofs)
        with DistributedSolverContext(op, n_workers=2,
                                      trace_timeline=True) as ctx:
            ctx.operator.vmult(b)
            events = ctx.timeline_events()
            rb = ctx.rank_exchange_bytes()
            totals = ctx.worker_phase_totals()
        assert len(events) > 0
        assert set(rb) == {0, 1}
        assert set(totals) == {"0", "1"}
        a = analyze_timeline(events, rank_bytes=rb)
        assert "achieved_gb_s" in a["totals"]["per_rank"]["0"]
