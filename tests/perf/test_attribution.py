"""Tests of span-level work attribution and the roofline report."""

import pytest

from repro.parallel.machine import MachineModel
from repro.perf.attribution import (
    MACHINES,
    ROOFLINE_SCHEMA,
    KernelAttribution,
    as_span_root,
    collect_attribution,
    render_roofline,
    roofline_doc,
    subtree_attribution,
)
from repro.telemetry import SpanNode, Tracer

#: simple machine for exact-arithmetic assertions: 100 GFlop/s, 10 GB/s
TOY = MachineModel(
    name="toy",
    peak_flops_dp=100e9,
    mem_bandwidth=10e9,
    cache_per_core=1e6,
    n_cores=1,
    network_latency=1e-6,
    network_bandwidth=1e9,
)


def build_tracer():
    """step -> {vmult (2 visits, annotated), chebyshev (annotated)}, and
    the same vmult name under a second parent."""
    tr = Tracer(enabled=True)
    with tr.span("step"):
        for _ in range(2):
            with tr.span("vmult[Op]"):
                tr.annotate(flops=1e6, bytes=5e5, dofs=1000)
        with tr.span("chebyshev"):
            tr.annotate(flops=2e5, bytes=4e5, dofs=1000)
    with tr.span("setup"):
        with tr.span("vmult[Op]"):
            tr.annotate(flops=1e6, bytes=5e5, dofs=1000)
    return tr


class TestKernelAttribution:
    def test_achieved_rates(self):
        k = KernelAttribution("x", calls=4, seconds=0.5, inclusive_seconds=0.5,
                              flops=1e9, bytes=2e9, dofs=5e6)
        assert k.gflops_per_s == pytest.approx(2.0)
        assert k.gbytes_per_s == pytest.approx(4.0)
        assert k.intensity == pytest.approx(0.5)
        assert k.dofs_per_s == pytest.approx(1e7)

    def test_model_seconds_is_slower_limit(self):
        # memory-bound on TOY: 2e9 B / 10e9 B/s = 0.2 s > 1e9/100e9 = 0.01 s
        k = KernelAttribution("x", 1, 0.5, 0.5, 1e9, 2e9, 0.0)
        assert k.model_seconds(TOY) == pytest.approx(0.2)
        assert k.fraction_of_model(TOY) == pytest.approx(0.4)
        # compute-bound case
        c = KernelAttribution("y", 1, 0.5, 0.5, 5e10, 1e8, 0.0)
        assert c.model_seconds(TOY) == pytest.approx(0.5)
        assert c.fraction_of_model(TOY) == pytest.approx(1.0)

    def test_zero_time_is_safe(self):
        k = KernelAttribution("x", 0, 0.0, 0.0, 1e9, 1e9, 1e3)
        assert k.gflops_per_s == 0.0
        assert k.fraction_of_model(TOY) == 0.0

    def test_to_dict_includes_model_fields_with_machine(self):
        k = KernelAttribution("x", 1, 0.5, 0.5, 1e9, 2e9, 1e3)
        d = k.to_dict(TOY)
        assert d["fraction_of_model"] == pytest.approx(0.4)
        assert "model_seconds" in d
        assert "fraction_of_model" not in k.to_dict()


class TestCollect:
    def test_aggregates_same_name_across_parents(self):
        rows = collect_attribution(build_tracer())
        by_name = {r.name: r for r in rows}
        v = by_name["vmult[Op]"]
        assert v.calls == 3
        assert v.flops == pytest.approx(3e6)
        assert v.dofs == pytest.approx(3000)
        assert by_name["chebyshev"].flops == pytest.approx(2e5)
        # un-annotated parents never become kernel rows
        assert "step" not in by_name and "setup" not in by_name

    def test_rows_sorted_by_exclusive_seconds(self):
        rows = collect_attribution(build_tracer())
        secs = [r.seconds for r in rows]
        assert secs == sorted(secs, reverse=True)

    def test_from_snapshot_roundtrip(self):
        tr = build_tracer()
        rows_live = collect_attribution(tr)
        rows_snap = collect_attribution(tr.snapshot())
        assert {r.name for r in rows_snap} == {r.name for r in rows_live}
        live = {r.name: r for r in rows_live}
        for r in rows_snap:
            assert r.flops == pytest.approx(live[r.name].flops)
            assert r.calls == live[r.name].calls

    def test_span_work_serialization(self):
        tr = build_tracer()
        snap = tr.snapshot()
        work = snap["spans"]["step"]["children"]["vmult[Op]"]["work"]
        assert work["flops"] == pytest.approx(2e6)
        node = SpanNode.from_dict("vmult[Op]", snap["spans"]["step"]["children"]["vmult[Op]"])
        assert node.flops == pytest.approx(2e6)
        # un-annotated spans serialize without a work section
        assert "work" not in snap["spans"]["step"]

    def test_as_span_root_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_span_root(42)


class TestSubtree:
    def test_substeps_sum_child_work(self):
        rows = subtree_attribution(build_tracer())
        by_name = {r.name: r for r in rows}
        step = by_name["step"]
        # vmult 2 visits + chebyshev, inclusive
        assert step.flops == pytest.approx(2e6 + 2e5)
        assert step.bytes == pytest.approx(2 * 5e5 + 4e5)
        setup = by_name["setup"]
        assert setup.flops == pytest.approx(1e6)

    def test_named_selection(self):
        rows = subtree_attribution(build_tracer(), names={"chebyshev"})
        assert [r.name for r in rows] == ["chebyshev"]
        assert rows[0].flops == pytest.approx(2e5)

    def test_workless_subtrees_are_dropped(self):
        tr = Tracer(enabled=True)
        with tr.span("idle"):
            pass
        assert subtree_attribution(tr) == []


class TestRooflineDoc:
    def test_doc_schema_and_fields(self):
        doc = roofline_doc(build_tracer(), TOY, meta={"run": "test"})
        assert doc["schema"] == ROOFLINE_SCHEMA
        assert doc["machine"]["name"] == "toy"
        assert doc["meta"] == {"run": "test"}
        names = [k["name"] for k in doc["kernels"]]
        assert "vmult[Op]" in names and "chebyshev" in names
        for k in doc["kernels"]:
            for field in ("gflops_per_s", "gbytes_per_s", "intensity",
                          "fraction_of_model", "model_seconds"):
                assert field in k
        assert any(s["name"] == "step" for s in doc["substeps"])

    def test_render_contains_rates_and_substeps(self):
        out = render_roofline(build_tracer(), TOY)
        assert "vmult[Op]" in out
        assert "GFlop/s" in out and "%model" in out
        assert "sub-step subtree attribution" in out

    def test_render_without_annotations(self):
        out = render_roofline(Tracer(enabled=True), TOY)
        assert "no annotated spans" in out

    def test_machine_registry(self):
        assert set(MACHINES) == {"local", "supermuc-ng", "summit-v100",
                                 "fugaku-a64fx"}
        for m in MACHINES.values():
            assert m.peak_flops_dp > 0 and m.mem_bandwidth > 0


class TestOperatorInstrumentation:
    """The operator layer attaches its analytic work model to the spans
    the roofline consumes — end to end on a real mesh."""

    @pytest.fixture(scope="class")
    def traced(self):
        import numpy as np

        from repro.core.dof_handler import DGDofHandler
        from repro.core.operators import DGLaplaceOperator
        from repro.mesh.connectivity import build_connectivity
        from repro.mesh.generators import box
        from repro.mesh.mapping import GeometryField
        from repro.mesh.octree import Forest
        from repro.telemetry import TRACER

        forest = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1}))
        dof = DGDofHandler(forest, 2)
        op = DGLaplaceOperator(dof, GeometryField(forest, 2),
                               build_connectivity(forest), dirichlet_ids=(1,))
        x = np.linspace(0.0, 1.0, op.n_dofs)
        TRACER.reset()
        TRACER.enable()
        try:
            for _ in range(3):
                op.vmult(x)
            snap = TRACER.snapshot()
        finally:
            TRACER.disable()
            TRACER.reset()
        return op, snap

    def test_vmult_span_carries_work_model(self, traced):
        op, snap = traced
        rows = collect_attribution(snap)
        v = {r.name: r for r in rows}["vmult[DGLaplaceOperator]"]
        wm = op.work_model()
        assert v.calls == 3
        assert v.flops == pytest.approx(3 * wm["flops"])
        assert v.bytes == pytest.approx(3 * wm["bytes"])
        assert v.dofs == pytest.approx(3 * op.n_dofs)
        assert snap["counters"]["vmult.DGLaplaceOperator"] == 3

    def test_work_model_matches_analytic_counts(self, traced):
        from repro.perf import laplace_flops, laplace_transfer

        op, _ = traced
        wm = op.work_model()
        conn = op.conn
        f = laplace_flops(op.dof.degree, op.kern.n_q_points,
                          even_odd=op.kern.use_even_odd,
                          collocation=op.kern.use_collocation)
        expected = f.matvec_total(op.dof.n_cells, conn.n_interior_faces,
                                  conn.n_boundary_faces)
        assert wm["flops"] == pytest.approx(expected)
        assert wm["bytes"] >= laplace_transfer(
            op.dof.degree, op.kern.n_q_points
        ).total_bytes(op.dof.n_cells) * 0.99
