"""Tests of the benchmark regression harness (``repro bench``)."""

import copy
import json

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    SUITES,
    compare_bench,
    dtype_suffix,
    load_bench,
    machine_fingerprint,
    migrate_bench_doc,
    render_bench,
    render_compare,
    run_suite,
)


def make_doc(throughputs: dict[str, float], n_dofs: int = 1000) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "suite": "ops",
        "smoke": True,
        "degree": 3,
        "fingerprint": {"numpy": "test"},
        "cases": [
            {"name": name, "n_dofs": n_dofs, "throughput": tp,
             "throughput_units": "dofs/s", "meta": {}, "metrics": {}}
            for name, tp in throughputs.items()
        ],
    }


class TestFingerprint:
    def test_identifies_stack(self):
        import numpy as np

        fp = machine_fingerprint()
        assert fp["numpy"] == np.__version__
        assert fp["cpu_count"] >= 1
        assert fp["python"].count(".") == 2
        assert fp["blas"]
        assert fp["timestamp"]
        # in this checkout the git SHA must resolve
        assert fp["git_sha"] and len(fp["git_sha"]) == 40


class TestCompare:
    def test_regression_detected(self):
        base = make_doc({"a": 100.0, "b": 50.0})
        cur = make_doc({"a": 100.0, "b": 40.0})  # b dropped 20%
        rep = compare_bench(cur, base, max_regression=0.15)
        assert not rep["ok"]
        assert [r["name"] for r in rep["regressions"]] == ["b"]
        assert rep["regressions"][0]["ratio"] == pytest.approx(0.8)
        assert [r["name"] for r in rep["unchanged"]] == ["a"]

    def test_within_threshold_passes(self):
        base = make_doc({"a": 100.0})
        cur = make_doc({"a": 90.0})  # -10% < 15% threshold
        rep = compare_bench(cur, base, max_regression=0.15)
        assert rep["ok"] and not rep["regressions"]

    def test_improvement_reported(self):
        rep = compare_bench(make_doc({"a": 200.0}), make_doc({"a": 100.0}))
        assert rep["ok"]
        assert [r["name"] for r in rep["improvements"]] == ["a"]

    def test_artificially_inflated_baseline_fails(self):
        cur = make_doc({"a": 100.0, "b": 50.0})
        base = copy.deepcopy(cur)
        for c in base["cases"]:
            c["throughput"] *= 2.0
        rep = compare_bench(cur, base)
        assert not rep["ok"]
        assert len(rep["regressions"]) == 2

    def test_mismatched_cases_skip_with_reason(self):
        base = make_doc({"a": 100.0, "gone": 10.0})
        cur = make_doc({"a": 100.0, "new": 5.0})
        rep = compare_bench(cur, base)
        reasons = {s["name"]: s["reason"] for s in rep["skipped"]}
        assert reasons["new"] == "not in baseline"
        assert reasons["gone"] == "not in current run"
        assert rep["ok"]

    def test_size_mismatch_never_compared(self):
        base = make_doc({"a": 100.0}, n_dofs=1000)
        cur = make_doc({"a": 10.0}, n_dofs=8000)  # refined mesh, not slower
        rep = compare_bench(cur, base)
        assert rep["ok"]
        assert "n_dofs mismatch" in rep["skipped"][0]["reason"]

    def test_render_compare(self):
        rep = compare_bench(make_doc({"a": 80.0}), make_doc({"a": 100.0}),
                            max_regression=0.1)
        out = render_compare(rep)
        assert "FAIL" in out and "! a" in out and "-20.0%" in out
        ok = render_compare(compare_bench(make_doc({"a": 100.0}),
                                          make_doc({"a": 100.0})))
        assert "PASS" in ok


class TestDtypeAxis:
    def test_dtype_suffix(self):
        import numpy as np

        assert dtype_suffix("float64") == ""
        assert dtype_suffix("float32") == "@float32"
        assert dtype_suffix(np.float32) == "@float32"

    def test_compare_joins_pre_dtype_baseline_as_float64(self):
        # baselines written before the dtype axis carry no "dtype" field;
        # they must still join current float64 cases by name
        base = make_doc({"a": 100.0})
        cur = make_doc({"a": 100.0})
        for c in cur["cases"]:
            c["dtype"] = "float64"
        rep = compare_bench(cur, base)
        assert rep["ok"]
        assert [r["name"] for r in rep["unchanged"]] == ["a"]

    def test_fp32_case_never_compared_to_fp64_baseline(self):
        # a float32 run against a float64 baseline must skip, not
        # report the dtype speedup as a spurious regression/improvement
        base = make_doc({"a": 100.0})
        cur = make_doc({"a": 30.0})
        for c in cur["cases"]:
            c["dtype"] = "float32"
        rep = compare_bench(cur, base)
        assert rep["ok"]
        assert not rep["regressions"] and not rep["improvements"]
        reasons = {s["reason"] for s in rep["skipped"]}
        assert reasons == {"not in baseline", "not in current run"}

    def test_vmult_suite_float32_names_and_fields(self):
        doc = run_suite("vmult", smoke=True, degree=2, dtype="float32",
                        case_filter="box_r1/dg_laplace")
        assert doc["dtype"] == "float32"
        assert [c["name"] for c in doc["cases"]] == [
            "box_r1/dg_laplace/legacy@float32",
            "box_r1/dg_laplace/planned@float32",
            "box_r1/dg_laplace/ensemble_e1@float32",
            "box_r1/dg_laplace/ensemble_e2@float32",
            "box_r1/dg_laplace/ensemble_e4@float32",
            "box_r1/dg_laplace/ensemble_e8@float32",
            "box_r1/dg_laplace/sequential_e8@float32",
        ]
        for c in doc["cases"]:
            assert c["dtype"] == "float32"
            assert c["throughput"] > 0
        members = [c["meta"]["members"] for c in doc["cases"]
                   if c["meta"].get("mode") == "ensemble"]
        assert members == [1, 2, 4, 8]
        # aggregate DoF accounting: an E-member batch moves E*n DoF
        e8 = next(c for c in doc["cases"]
                  if c["name"].startswith("box_r1/dg_laplace/ensemble_e8"))
        e1 = next(c for c in doc["cases"]
                  if c["name"].startswith("box_r1/dg_laplace/ensemble_e1"))
        assert e8["n_dofs"] == 8 * e1["n_dofs"]


class TestMigration:
    OLD = {
        "schema": "repro/bench-vmult/1",
        "smoke": False,
        "degree": 3,
        "cases": [{
            "case": "box_r3", "n_cells": 128, "degree": 3, "n_dofs": 8192,
            "legacy": {
                "dg_laplace_vmult_seconds": 0.02,
                "dg_laplace_dofs_per_second": 409600.0,
                "dg_laplace_alloc_peak_bytes": 1000,
                "dg_laplace_alloc_net_blocks": 0,
                "vector_laplace_vmult_seconds": 0.05,
                "vector_laplace_dofs_per_second": 163840.0,
                "mg_setup_seconds": 0.5,
            },
            "planned": {
                "dg_laplace_vmult_seconds": 0.01,
                "dg_laplace_dofs_per_second": 819200.0,
                "dg_laplace_alloc_peak_bytes": 500,
                "dg_laplace_alloc_net_blocks": 0,
                "vector_laplace_vmult_seconds": 0.025,
                "vector_laplace_dofs_per_second": 327680.0,
                "mg_setup_seconds": 0.1,
            },
            "speedup": {"dg_laplace_vmult": 2.0, "vector_laplace_vmult": 2.0,
                        "mg_setup": 5.0},
        }],
    }

    def test_numbers_preserved(self):
        new = migrate_bench_doc(self.OLD)
        assert new["schema"] == BENCH_SCHEMA
        assert new["suite"] == "vmult"
        by_name = {c["name"]: c for c in new["cases"]}
        assert len(by_name) == 6  # 3 kernels x 2 modes
        lap = by_name["box_r3/dg_laplace/planned"]
        assert lap["throughput"] == pytest.approx(819200.0)
        assert lap["n_dofs"] == 8192
        assert lap["meta"]["mode"] == "planned"
        assert lap["metrics"]["best_seconds"] == pytest.approx(0.01)
        mg = by_name["box_r3/mg_setup/legacy"]
        assert mg["throughput"] == pytest.approx(2.0)  # 1/0.5 setups/s
        assert mg["throughput_units"] == "setups/s"
        assert new["fingerprint"]["migrated_from"] == "repro/bench-vmult/1"

    def test_current_schema_passes_through(self):
        doc = make_doc({"a": 1.0})
        assert migrate_bench_doc(doc) is doc

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="cannot migrate"):
            migrate_bench_doc({"schema": "other/1"})

    def test_load_bench_migrates_from_disk(self, tmp_path):
        p = tmp_path / "old.json"
        p.write_text(json.dumps(self.OLD))
        doc = load_bench(p)
        assert doc["schema"] == BENCH_SCHEMA

    def test_compare_works_across_schemas(self):
        """A new-schema run compares against an old-schema baseline."""
        new = migrate_bench_doc(self.OLD)
        rep = compare_bench(new, self.OLD)
        assert rep["ok"]
        assert len(rep["unchanged"]) == 6

    def test_committed_baseline_is_current_schema(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        doc = json.loads((root / "BENCH_vmult.json").read_text())
        assert doc["schema"] == BENCH_SCHEMA
        smoke = json.loads(
            (root / "benchmarks/baselines/BENCH_ops_smoke.json").read_text()
        )
        assert smoke["schema"] == BENCH_SCHEMA
        assert smoke["suite"] == "ops"


class TestRunSuite:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")

    def test_declared_suites(self):
        assert set(SUITES) == {"ops", "vmult", "ensemble", "scaling"}

    def test_smoke_filtered_case_runs(self):
        doc = run_suite("ops", smoke=True, degree=2,
                        case_filter="dg_laplace_vmult")
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["smoke"] is True
        assert [c["name"] for c in doc["cases"]] == ["box_r1/dg_laplace_vmult"]
        c = doc["cases"][0]
        assert c["throughput"] > 0
        assert c["throughput_units"] == "dofs/s"
        assert c["metrics"]["best_seconds"] > 0
        assert doc["fingerprint"]["numpy"]
        out = render_bench(doc)
        assert "dg_laplace_vmult" in out and "dofs/s" in out

    def test_vmult_suite_modes(self):
        doc = run_suite("vmult", smoke=True, degree=2,
                        case_filter="box_r1/dg_laplace")
        names = [c["name"] for c in doc["cases"]]
        assert names == [
            "box_r1/dg_laplace/legacy",
            "box_r1/dg_laplace/planned",
            "box_r1/dg_laplace/ensemble_e1",
            "box_r1/dg_laplace/ensemble_e2",
            "box_r1/dg_laplace/ensemble_e4",
            "box_r1/dg_laplace/ensemble_e8",
            "box_r1/dg_laplace/sequential_e8",
        ]
        modes = {c["meta"]["mode"] for c in doc["cases"]}
        assert modes == {"legacy", "planned", "ensemble", "sequential"}
