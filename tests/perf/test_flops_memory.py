"""Hand-counted checks of the analytic work models.

The expected numbers below are computed *by hand* from the model's
stated structure (Section 5.1 / Figure 7 conventions: FMA = 2 Flop,
even-odd 1D kernels use ``2*ceil(n/2)**2`` multiplications per line,
d = 3), independently of the implementation, so a silent change to the
counting breaks these tests.
"""

import math

import pytest

from repro.perf import (
    arithmetic_intensity,
    inverse_mass_flops,
    laplace_flops,
    laplace_transfer,
    mass_flops,
)
from repro.perf.flops import chebyshev_iteration_flops, flops_apply_1d, mults_1d


def eo_sweep(n, n_lines):
    """Even-odd tensor sweep: 2 Flop per multiplication, 2*ceil(n/2)^2
    multiplications per line."""
    return 2 * (2 * math.ceil(n / 2) ** 2) * n_lines


class TestPrimitives:
    def test_mults_1d_even_odd(self):
        # n=4: even-odd halves both loops -> 2*2*2 = 8 (vs 16 dense)
        assert mults_1d(4, 4, even_odd=True) == 8
        assert mults_1d(4, 4, even_odd=False) == 16
        # odd n=5: ceil(5/2)=3 -> 2*3*3 = 18 (vs 25 dense)
        assert mults_1d(5, 5, even_odd=True) == 18

    def test_flops_apply_1d(self):
        assert flops_apply_1d(4, 4, 16, even_odd=True) == 2 * 8 * 16
        assert flops_apply_1d(3, 3, 9, even_odd=False) == 2 * 9 * 9


class TestLaplaceFlopsHandCounted:
    """Cell part = 9 forward + 9 backward even-odd sweeps over n^2 lines
    plus 18 Flop per quadrature point:  72*ceil(n/2)^2*n^2 + 18*n^3."""

    # degree -> hand-computed (cell, inner_face, boundary_face)
    # k=2 (n=3, c=2): cell = 72*4*9   + 18*27  = 2592  + 486  = 3078
    # k=3 (n=4, c=2): cell = 72*4*16  + 18*64  = 4608  + 1152 = 5760
    # k=4 (n=5, c=3): cell = 72*9*25  + 18*125 = 16200 + 2250 = 18450
    # k=5 (n=6, c=3): cell = 72*9*36  + 18*216 = 23328 + 3888 = 27216
    CELL = {2: 3078, 3: 5760, 4: 18450, 5: 27216}

    @pytest.mark.parametrize("degree", [2, 3, 4, 5])
    def test_cell_flops(self, degree):
        assert laplace_flops(degree).cell == self.CELL[degree]

    @pytest.mark.parametrize("degree", [2, 3, 4, 5])
    def test_cell_flops_formula(self, degree):
        n = degree + 1
        expected = 18 * eo_sweep(n, n * n) + 18 * n**3
        assert laplace_flops(degree).cell == expected

    def test_face_flops_degree2(self):
        # per side: normal-derivative dot (2*n*n^2 = 54) + 2 tangential
        # sweeps (2*eo_sweep(3, 9) = 288) + 4 fields x 2 quadrature
        # sweeps over n resp. nq lines (8*eo_sweep(3, 3) = 384) -> 726;
        # inner face: 2 sides x (eval + transpose) + 60 Flop/q-point
        # = 4*726 + 60*9 = 3444; boundary: 2*726 + 40*9 = 1812.
        f = laplace_flops(2)
        assert f.inner_face == 3444
        assert f.boundary_face == 1812

    def test_matvec_total_composition(self):
        f = laplace_flops(3)
        total = f.matvec_total(n_cells=10, n_inner_faces=7, n_boundary_faces=4)
        assert total == 10 * f.cell + 7 * f.inner_face + 4 * f.boundary_face

    def test_even_odd_saves_flops(self):
        for k in range(1, 7):
            assert laplace_flops(k, even_odd=True).cell < \
                laplace_flops(k, even_odd=False).cell


class TestLaplaceTransferHandCounted:
    """Ideal transfer per cell: 3 vector passes (3*n^3*8 B) + cell
    metric (6*nq^3*8 B) + 3 face sheets of 7 doubles per q-point
    (3*7*nq^2*8 B) + 8 ints of metadata (32 B)."""

    # k=2 (n=3):  648 + 1296  + 1512 + 32 = 3488
    # k=3 (n=4): 1536 + 3072  + 2688 + 32 = 7328
    # k=4 (n=5): 3000 + 6000  + 4200 + 32 = 13232
    # k=5 (n=6): 5184 + 10368 + 6048 + 32 = 21632
    BYTES = {2: 3488, 3: 7328, 4: 13232, 5: 21632}

    @pytest.mark.parametrize("degree", [2, 3, 4, 5])
    def test_bytes_per_cell(self, degree):
        assert laplace_transfer(degree).bytes_per_cell == self.BYTES[degree]

    def test_bytes_per_dof_decreases_then_vector_dominates(self):
        # per-DoF transfer shrinks with degree (metric amortizes)
        b = [laplace_transfer(k).bytes_per_dof() for k in range(1, 7)]
        assert b[0] > b[-1]

    def test_total_bytes_scales_with_cells(self):
        t = laplace_transfer(3)
        assert t.total_bytes(100) == 100 * t.bytes_per_cell


class TestArithmeticIntensity:
    """Figure 7 / Table 1: the DG Laplacian sits left of the Skylake
    ridge with AI ~ 1.6-4.8 Flop/B across k = 1..6 (paper: ~1-5)."""

    @pytest.mark.parametrize("degree", range(1, 7))
    def test_intensity_in_paper_band(self, degree):
        f = laplace_flops(degree)
        t = laplace_transfer(degree)
        # ~3 interior faces per cell on a structured mesh
        ai = arithmetic_intensity(f.cell + 3 * f.inner_face, t.bytes_per_cell)
        assert 1.5 <= ai <= 6.5

    def test_spot_values(self):
        # k=2: (3078 + 3*3444)/3488 = 13410/3488 = 3.845
        f2, t2 = laplace_flops(2), laplace_transfer(2)
        ai2 = arithmetic_intensity(f2.cell + 3 * f2.inner_face, t2.bytes_per_cell)
        assert ai2 == pytest.approx(3.845, rel=0.01)
        # k=4: (18450 + 3*15460)/13232 = 64830/13232 = 4.900
        f4, t4 = laplace_flops(4), laplace_transfer(4)
        ai4 = arithmetic_intensity(f4.cell + 3 * f4.inner_face, t4.bytes_per_cell)
        assert ai4 == pytest.approx(4.900, rel=0.01)

    def test_parity_oscillation(self):
        """Even-odd counts oscillate with parity: odd n (even k) is less
        favorable, so AI does not grow monotonically."""
        ais = []
        for k in range(1, 7):
            f, t = laplace_flops(k), laplace_transfer(k)
            ais.append(arithmetic_intensity(f.cell + 3 * f.inner_face,
                                            t.bytes_per_cell))
        assert ais[2] < ais[1]  # k=3 dips below k=2 (n back to even)
        assert ais[-1] > ais[0]  # but the trend across the range is up


class TestMassFlops:
    def test_mass_hand_counted_degree2(self):
        # n = nq = 3: fwd = 3 even-odd sweeps over 9 lines = 3*eo_sweep(3,9)
        # = 432, bwd symmetric = 432, + 27 pointwise -> 891
        assert mass_flops(2) == 891

    def test_mass_components_scale_linearly(self):
        assert mass_flops(2, n_components=3) == 3 * mass_flops(2)

    def test_inverse_mass_hand_counted(self):
        # k=2 (n=3): 6 dense square sweeps = 6*2*9*9 = 972, + 27 divisions
        assert inverse_mass_flops(2) == 999
        # k=3 (n=4): 6*2*16*16 = 3072, + 64 -> 3136
        assert inverse_mass_flops(3) == 3136

    def test_chebyshev_per_iteration(self):
        assert chebyshev_iteration_flops(3, 1000) == 6000
