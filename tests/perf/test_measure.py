"""Tests of the throughput measurement harness."""

import time

import numpy as np
import pytest

from repro.perf.measure import ThroughputResult, measure_operator, measure_throughput


class TestMeasureThroughput:
    def test_best_of_n_semantics(self):
        calls = []

        def fn():
            # first timed call is slow, later ones fast: best must win
            time.sleep(0.02 if len(calls) < 3 else 0.001)
            calls.append(1)

        r = measure_throughput(fn, n_dofs=1000, repetitions=6, warmup=1,
                               track_allocations=False)
        assert r.repetitions == 6
        assert len(calls) == 7  # warmup + 6
        assert r.best_seconds <= r.mean_seconds
        assert r.best_seconds < 0.015

    def test_dofs_per_second(self):
        r = ThroughputResult("x", n_dofs=100, best_seconds=0.01,
                             mean_seconds=0.02, repetitions=3)
        assert r.dofs_per_second == pytest.approx(1e4)
        assert "DoF/s" in str(r)

    def test_reports_sample_std(self):
        r = measure_throughput(lambda: time.sleep(0.001), n_dofs=10,
                               repetitions=5, warmup=0)
        assert r.std_seconds >= 0.0
        samples_implied = np.array([r.best_seconds, r.mean_seconds])
        assert np.all(samples_implied > 0)
        # a constant workload cannot have std larger than its mean
        assert r.std_seconds < r.mean_seconds

    def test_single_repetition_has_zero_std(self):
        r = measure_throughput(lambda: None, n_dofs=1, repetitions=1, warmup=0)
        assert r.std_seconds == 0.0

    def test_gc_disabled_during_samples_and_restored(self):
        import gc

        states = []
        r = measure_throughput(lambda: states.append(gc.isenabled()),
                               n_dofs=1, repetitions=3, warmup=1)
        # warmup runs with GC on, timed samples with GC off, and the
        # allocation sample runs after timing with GC restored
        assert states == [True, False, False, False, True]
        assert gc.isenabled()
        assert r.repetitions == 3

    def test_gc_stays_disabled_if_it_was(self):
        import gc

        gc.disable()
        try:
            measure_throughput(lambda: None, n_dofs=1, repetitions=2, warmup=0)
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_allocation_tracking_populates_fields(self):
        def fn():
            np.zeros(1 << 16)  # 512 KB transient

        r = measure_throughput(fn, n_dofs=10, repetitions=2, warmup=0)
        assert r.alloc_peak_bytes is not None
        assert r.alloc_peak_bytes >= (1 << 16) * 8
        assert isinstance(r.alloc_net_blocks, int)
        assert "alloc" in str(r)

    def test_allocation_tracking_opt_out(self):
        r = measure_throughput(lambda: None, n_dofs=1, repetitions=1,
                               warmup=0, track_allocations=False)
        assert r.alloc_peak_bytes is None
        assert r.alloc_net_blocks is None
        assert "alloc" not in str(r)

    def test_measure_allocations_buffer_reuse_is_cheap(self):
        from repro.perf.measure import measure_allocations

        buf = np.empty(1 << 14)

        def into_buffer():
            buf[...] = 1.0

        def fresh():
            np.ones(1 << 14)

        peak_reuse, _ = measure_allocations(into_buffer)
        peak_fresh, _ = measure_allocations(fresh)
        assert peak_fresh >= (1 << 14) * 8
        assert peak_reuse < peak_fresh

    def test_measure_operator_uses_vmult(self):
        class Op:
            n_dofs = 50
            calls = 0

            def vmult(self, x):
                type(self).calls += 1
                return x * 2.0

        op = Op()
        r = measure_operator(op, repetitions=4)
        assert Op.calls >= 4
        assert r.n_dofs == 50
        assert r.name == "Op"

    def test_calibrate_local_machine(self):
        from repro.perf.measure import calibrate_local_machine

        m = calibrate_local_machine(degree=2, refinements=1, repetitions=2)
        assert m.matvec_dofs_per_s_k3 > 1e3  # any working machine
        assert "NumPy" in m.name
