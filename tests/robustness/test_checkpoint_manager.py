"""Tests of CheckpointManager: interval policies, rotation, the latest
pointer, atomic writes, config-drift detection, and the
write-path fix of the underlying state serialization."""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.lung import LungVentilationSimulation
from repro.ns.checkpoint import (
    CheckpointConfigDrift,
    load_lung_state,
    save_lung_state,
    save_scheme_state,
)
from repro.ns.solver import SolverSettings
from repro.robustness import CheckpointManager, RobustnessSettings, RunConfig


def quick_config(**robustness):
    return RunConfig(
        generations=1,
        degree=2,
        solver=SolverSettings(solver_tolerance=1e-3, cfl=0.3),
        robustness=RobustnessSettings(**robustness),
    )


@pytest.fixture(scope="module")
def stepped_sim():
    sim = LungVentilationSimulation(quick_config())
    for _ in range(2):
        sim.step()
    return sim


class TestWrittenPathFix:
    def test_suffixed_path_returns_real_file(self, tmp_path, stepped_sim):
        # np.savez_compressed appends ".npz" to "state.ckpt"; the
        # returned path must name the file that actually exists
        p = save_scheme_state(tmp_path / "state.ckpt", stepped_sim.solver.scheme)
        assert p.name == "state.ckpt.npz"
        assert p.exists()
        assert not (tmp_path / "state.ckpt").exists()

    def test_npz_path_unchanged(self, tmp_path, stepped_sim):
        p = save_scheme_state(tmp_path / "state.npz", stepped_sim.solver.scheme)
        assert p.name == "state.npz" and p.exists()

    def test_lung_save_returns_written_path(self, tmp_path, stepped_sim):
        p = save_lung_state(tmp_path / "lung.ckpt", stepped_sim)
        assert p.name == "lung.ckpt.npz" and p.exists()


class TestPolicies:
    def test_step_interval(self, tmp_path, stepped_sim):
        m = CheckpointManager(tmp_path, every_steps=3)
        written = [m.maybe_save(stepped_sim) for _ in range(7)]
        assert [w is not None for w in written] == [
            False, False, True, False, False, True, False,
        ]
        assert len(m.checkpoints()) == 2

    def test_seconds_interval(self, tmp_path, monkeypatch):
        class FakeSim:
            time = 0.0

        sim = FakeSim()
        m = CheckpointManager(tmp_path, every_seconds=0.1)
        saved = []

        def fake_save(s):  # the interval policy is what is under test
            saved.append(s.time)
            m._steps_since = 0
            m._last_t = float(s.time)

        monkeypatch.setattr(m, "save", fake_save)
        for k in range(8):
            sim.time = k * 0.04
            m.maybe_save(sim)
        # baseline at the first observed step, then every 0.1 simulated s
        assert saved == [pytest.approx(0.12), pytest.approx(0.24)]

    def test_disabled_policies_never_save(self, tmp_path, stepped_sim):
        m = CheckpointManager(tmp_path)
        for _ in range(5):
            assert m.maybe_save(stepped_sim) is None
        assert m.checkpoints() == []

    def test_from_settings_requires_directory(self):
        assert CheckpointManager.from_settings(RobustnessSettings()) is None

    def test_from_settings_builds_manager(self, tmp_path):
        s = RobustnessSettings(
            checkpoint_dir=str(tmp_path), checkpoint_every_steps=2,
            checkpoint_keep=5,
        )
        m = CheckpointManager.from_settings(s)
        assert m.every_steps == 2 and m.keep == 5
        assert m.directory == tmp_path


class TestRotationAndPointer:
    def test_rotation_keeps_last_k(self, tmp_path, stepped_sim):
        m = CheckpointManager(tmp_path, every_steps=1, keep=2)
        for _ in range(5):
            m.maybe_save(stepped_sim)
        files = m.checkpoints()
        assert [f.name for f in files] == ["ckpt-00000003.npz", "ckpt-00000004.npz"]
        assert m.latest() == files[-1]
        assert (tmp_path / "latest").read_text().strip() == "ckpt-00000004.npz"

    def test_sequence_continues_across_managers(self, tmp_path, stepped_sim):
        m1 = CheckpointManager(tmp_path, every_steps=1)
        m1.maybe_save(stepped_sim)
        m2 = CheckpointManager(tmp_path, every_steps=1)
        p = m2.maybe_save(stepped_sim)
        assert p.name == "ckpt-00000001.npz"

    def test_no_torn_files_left_behind(self, tmp_path, stepped_sim):
        m = CheckpointManager(tmp_path, every_steps=1)
        m.maybe_save(stepped_sim)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_latest_pointer_fallback_when_stale(self, tmp_path, stepped_sim):
        m = CheckpointManager(tmp_path, every_steps=1)
        m.maybe_save(stepped_sim)
        m.maybe_save(stepped_sim)
        (tmp_path / "latest").write_text("ckpt-99999999.npz\n")
        assert m.latest().name == "ckpt-00000001.npz"

    def test_resume_without_checkpoints_raises(self, tmp_path, stepped_sim):
        m = CheckpointManager(tmp_path)
        with pytest.raises(FileNotFoundError, match="no checkpoint"):
            m.resume(stepped_sim)


class TestResume:
    def test_in_process_resume_is_bit_identical(self, tmp_path):
        cfg = quick_config()
        ref = LungVentilationSimulation(cfg)
        twin = LungVentilationSimulation(cfg)
        for _ in range(4):
            ref.step()
        m = CheckpointManager(tmp_path, every_steps=2)
        twin.run(t_end=np.inf, max_steps=2, checkpoints=m)
        assert m.n_writes == 1

        fresh = LungVentilationSimulation(cfg)
        path = m.resume(fresh)
        assert path == m.latest()
        for _ in range(2):
            fresh.step()
        assert fresh.time == ref.time
        assert np.array_equal(fresh.solver.velocity, ref.solver.velocity)
        assert np.array_equal(fresh.solver.pressure, ref.solver.pressure)
        assert fresh.tidal_volume_delivered() == ref.tidal_volume_delivered()

    def test_config_drift_warns(self, tmp_path):
        sim = LungVentilationSimulation(quick_config())
        sim.step()
        m = CheckpointManager(tmp_path, every_steps=1)
        m.maybe_save(sim)

        drifted = LungVentilationSimulation(
            dataclasses.replace(
                quick_config(),
                solver=SolverSettings(solver_tolerance=1e-4, cfl=0.3),
            )
        )
        with pytest.warns(CheckpointConfigDrift, match="solver_tolerance"):
            m.resume(drifted)

    def test_config_drift_raise_mode(self, tmp_path):
        sim = LungVentilationSimulation(quick_config())
        sim.step()
        m = CheckpointManager(tmp_path, every_steps=1)
        m.maybe_save(sim)
        drifted = LungVentilationSimulation(
            dataclasses.replace(
                quick_config(),
                solver=SolverSettings(solver_tolerance=1e-4, cfl=0.3),
            )
        )
        with pytest.raises(ValueError, match="solver_tolerance"):
            m.resume(drifted, config_drift="raise")

    def test_config_drift_ignore_mode(self, tmp_path):
        sim = LungVentilationSimulation(quick_config())
        sim.step()
        m = CheckpointManager(tmp_path, every_steps=1)
        m.maybe_save(sim)
        drifted = LungVentilationSimulation(
            dataclasses.replace(
                quick_config(),
                solver=SolverSettings(solver_tolerance=1e-4, cfl=0.3),
            )
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", CheckpointConfigDrift)
            m.resume(drifted, config_drift="ignore")

    def test_identical_config_does_not_warn(self, tmp_path):
        sim = LungVentilationSimulation(quick_config())
        sim.step()
        m = CheckpointManager(tmp_path, every_steps=1)
        m.maybe_save(sim)
        fresh = LungVentilationSimulation(quick_config())
        with warnings.catch_warnings():
            warnings.simplefilter("error", CheckpointConfigDrift)
            m.resume(fresh)

    def test_stored_config_round_trips(self, tmp_path, stepped_sim):
        p = save_lung_state(tmp_path / "s.npz", stepped_sim)
        stored = load_lung_state(
            p, stepped_sim, config_drift="ignore"
        )
        assert RunConfig.from_dict(stored) == stepped_sim.config

    def test_unsupported_version_rejected(self, tmp_path, stepped_sim):
        p = save_lung_state(tmp_path / "s.npz", stepped_sim)
        with np.load(p) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.array(99)
        np.savez_compressed(p, **payload)
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_lung_state(p, stepped_sim)
