"""Kill-and-resume across a real process boundary.

The reference run advances 2N steps and checkpoints every N; the crash
run checkpoints at step N and then dies with ``os._exit(137)`` (the CLI's
deterministic crash injection, indistinguishable from kill -9: no flushes,
no atexit); the resumed process loads ``latest`` and advances N more
steps.  The state both paths checkpoint at step 2N must agree to the
last bit."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]


def run_cli(args, check_rc=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lung", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=560,
    )
    assert proc.returncode == check_rc, (
        f"rc={proc.returncode}\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    return proc


def checkpoint_arrays(path):
    with np.load(path) as data:
        return {k: np.array(data[k]) for k in data.files if k != "config_json"}


class TestCrashResume:
    @pytest.mark.slow
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        ref_dir = tmp_path / "ref"
        crash_dir = tmp_path / "crash"
        common = ["--steps", "4", "--checkpoint-every", "2",
                  "--checkpoint-keep", "5"]

        run_cli([*common, "--checkpoint-dir", str(ref_dir)])
        crash = run_cli(
            [*common, "--checkpoint-dir", str(crash_dir),
             "--crash-after-step", "2"],
            check_rc=137,
        )
        assert "simulated crash after step 2" in crash.stdout
        # the crashed run left exactly the step-2 checkpoint behind
        assert sorted(p.name for p in crash_dir.glob("*.npz")) == [
            "ckpt-00000000.npz"
        ]

        resumed = run_cli(
            ["--steps", "2", "--checkpoint-every", "2", "--checkpoint-keep",
             "5", "--checkpoint-dir", str(crash_dir), "--resume", "latest"],
        )
        assert "resumed from" in resumed.stdout

        ref = checkpoint_arrays(ref_dir / "ckpt-00000001.npz")
        res = checkpoint_arrays(crash_dir / "ckpt-00000001.npz")
        assert set(ref) == set(res)
        for key in sorted(ref):
            assert np.array_equal(ref[key], res[key]), (
                f"checkpoint field {key} differs after kill/resume"
            )


class TestCheckpointFlags:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["lung", "--steps", "1", "--resume", "latest"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_from_empty_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["lung", "--steps", "1",
                     "--checkpoint-dir", str(tmp_path / "empty"),
                     "--resume", "latest"]) == 2
        assert "no checkpoint" in capsys.readouterr().err

    def test_missing_config_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["lung", "--steps", "1",
                     "--config", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoints_written_and_rotated(self, tmp_path, capsys):
        ckpt = tmp_path / "ck"
        assert main(["lung", "--steps", "4", "--checkpoint-dir", str(ckpt),
                     "--checkpoint-every", "1", "--checkpoint-keep", "2"]) == 0
        names = sorted(p.name for p in ckpt.glob("*.npz"))
        assert names == ["ckpt-00000002.npz", "ckpt-00000003.npz"]
        assert (ckpt / "latest").read_text().strip() == "ckpt-00000003.npz"

    def test_config_file_drives_the_run(self, tmp_path, capsys):
        from repro.robustness import RunConfig

        cfg = tmp_path / "run.json"
        cfg.write_text(RunConfig(generations=1, degree=2).to_json())
        assert main(["lung", "--steps", "1", "--config", str(cfg)]) == 0
        assert "lung g=1" in capsys.readouterr().out

    def test_run_log_records_recovery_counters(self, tmp_path):
        # a clean traced run reports zero-fault telemetry: the counters
        # namespace exists in the summary only when faults occurred
        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "2", "--trace",
                     "--log-file", str(log)]) == 0
        summary = [json.loads(line) for line in log.read_text().splitlines()
                   if json.loads(line).get("type") == "summary"][0]
        assert not any(k.startswith("recovery.") for k in summary["counters"])
