"""Tests of the deterministic pressure-solver fallback chain."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.ns import (
    BeltramiFlow,
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    SolverSettings,
    VelocityDirichlet,
)
from repro.robustness import (
    FallbackTier,
    PressureFallbackChain,
    RobustnessSettings,
)
from repro.solvers import HybridMultigridPreconditioner, JacobiPreconditioner
from repro.telemetry import TRACER


class DenseOp:
    def __init__(self, A):
        self.A = np.asarray(A)

    @property
    def n_dofs(self):
        return self.A.shape[0]

    def vmult(self, x):
        return self.A @ x

    def diagonal(self):
        return np.diag(self.A).copy()


class PoisonPre:
    """A preconditioner whose output is always non-finite."""

    def __init__(self):
        self.calls = 0

    def vmult(self, r):
        self.calls += 1
        return np.full_like(np.asarray(r, dtype=float), np.nan)


def spd_matrix(n, cond=100.0, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigs = np.geomspace(1.0, cond, n)
    return (Q * eigs) @ Q.T


class TestChainEscalation:
    def test_escalates_past_poisoned_tier(self):
        A = spd_matrix(30)
        op = DenseOp(A)
        b = np.ones(30)
        poison = PoisonPre()
        chain = PressureFallbackChain([
            FallbackTier("primary", lambda: poison),
            FallbackTier("rescue", lambda: JacobiPreconditioner(op)),
        ])
        TRACER.reset()
        TRACER.enable()
        try:
            res = chain.solve(op, b, tol=1e-10, max_iter=500)
        finally:
            TRACER.disable()
        assert res.converged
        assert res.tier == "rescue"
        assert np.allclose(A @ res.x, b, atol=1e-7)
        assert chain.tier_counts == {"primary": 0, "rescue": 1}
        assert chain.escalations == 1
        assert chain.events[0].kind == "fallback_escalation"
        assert chain.events[0].reason == "nan_residual"
        assert TRACER.counters["fallback.pressure.tier.rescue"] == 1
        assert TRACER.counters["fallback.pressure.escalations"] == 1

    def test_first_tier_success_records_no_escalation(self):
        A = spd_matrix(30)
        op = DenseOp(A)
        chain = PressureFallbackChain([
            FallbackTier("primary", lambda: JacobiPreconditioner(op)),
            FallbackTier("rescue", lambda: pytest.fail("must stay lazy")),
        ])
        res = chain.solve(op, np.ones(30), tol=1e-10, max_iter=500)
        assert res.converged and res.tier == "primary"
        assert chain.escalations == 0
        assert "rescue" not in chain._preconditioners

    def test_exhausted_chain_returns_last_failure(self):
        A = spd_matrix(10)
        op = DenseOp(A)
        chain = PressureFallbackChain([
            FallbackTier("a", PoisonPre),
            FallbackTier("b", PoisonPre),
        ])
        TRACER.reset()
        TRACER.enable()
        try:
            res = chain.solve(op, np.ones(10), tol=1e-10, max_iter=50)
        finally:
            TRACER.disable()
        assert not res.converged
        assert res.tier == ""
        assert res.failure_reason == "nan_residual"
        assert TRACER.counters["fallback.pressure.exhausted"] == 1

    def test_poisoned_rhs_short_circuits(self):
        A = spd_matrix(10)
        op = DenseOp(A)
        b = np.ones(10)
        b[0] = np.nan
        chain = PressureFallbackChain([
            FallbackTier("primary", lambda: JacobiPreconditioner(op)),
            FallbackTier("rescue", lambda: JacobiPreconditioner(op)),
        ])
        res = chain.solve(op, b, tol=1e-10, max_iter=50)
        assert not res.converged and res.failure_reason == "nan_residual"
        # no tier can rescue a non-finite rhs: the second never runs
        assert "rescue" not in chain._preconditioners

    def test_raised_iteration_cap(self):
        # a hard system the base cap cannot solve, the scaled cap can
        A = spd_matrix(60, cond=1e6, seed=3)
        op = DenseOp(A)
        chain = PressureFallbackChain([
            FallbackTier("primary", lambda: None),
            FallbackTier("rescue", lambda: None, max_iter_scale=80.0),
        ])
        res = chain.solve(op, np.ones(60), tol=1e-10, max_iter=10)
        assert res.converged
        assert res.tier == "rescue"


def poisson_operator():
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(1)
    geo = GeometryField(forest, 2)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, 2)
    return DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))


class TestMixedPrecisionEscalation:
    def test_overflow_rhs_escalates_to_double_precision_mg(self):
        """A right-hand side near the float32 range: the mixed-precision
        V-cycle overflows to non-finite, the double-precision tier
        converges — the documented first escalation of the chain."""
        op = poisson_operator()
        mg_mixed = HybridMultigridPreconditioner(op)
        chain = PressureFallbackChain([
            FallbackTier("mg_mixed", lambda: mg_mixed),
            FallbackTier(
                "mg_double",
                lambda: HybridMultigridPreconditioner(op, precision=np.float64),
            ),
        ])
        rng = np.random.default_rng(0)
        b = rng.standard_normal(op.n_dofs) * 2e38  # finite in float32, but
        # any product overflows the single-precision V-cycle
        TRACER.reset()
        TRACER.enable()
        try:
            # the poisoned single-precision V-cycle overflows by design
            with np.errstate(invalid="ignore", over="ignore"):
                res = chain.solve(op, b, tol=1e-8, max_iter=500)
        finally:
            TRACER.disable()
        assert res.converged
        assert res.tier == "mg_double"
        assert mg_mixed.nonfinite_vcycles > 0
        assert TRACER.counters["fallback.pressure.tier.mg_double"] == 1
        assert TRACER.counters["fallback.pressure.escalations"] == 1
        assert TRACER.counters["mg.nonfinite_vcycles"] >= 1
        rel = np.linalg.norm(op.vmult(res.x) - b) / np.linalg.norm(b)
        assert rel < 1e-6


class TestSolverWiring:
    def test_solver_builds_documented_tier_order(self):
        mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
        forest = Forest(mesh).refine_all(1)
        flow = BeltramiFlow(0.05)
        bcs = BoundaryConditions(
            {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
        )
        solver = IncompressibleNavierStokesSolver(
            forest, 2, 0.05, bcs, SolverSettings(solver_tolerance=1e-6),
            robustness=RobustnessSettings(),
        )
        assert solver.pressure_fallback is not None
        assert solver.pressure_fallback.tier_names == [
            "mg_mixed", "mg_double", "jacobi_cg",
        ]
        assert solver.scheme.pressure_fallback is solver.pressure_fallback

    def test_fallback_disabled(self):
        mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
        forest = Forest(mesh).refine_all(1)
        bcs = BoundaryConditions({1: VelocityDirichlet.no_slip()})
        solver = IncompressibleNavierStokesSolver(
            forest, 2, 0.05, bcs, SolverSettings(solver_tolerance=1e-6),
            robustness=RobustnessSettings(enable_fallback=False),
        )
        assert solver.pressure_fallback is None
        assert solver.scheme.pressure_fallback is None
