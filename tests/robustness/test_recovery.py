"""Tests of divergence detection, rollback/retry, and StepFailure."""

import numpy as np
import pytest

from repro.mesh.generators import box
from repro.mesh.octree import Forest
from repro.ns import (
    BeltramiFlow,
    BoundaryConditions,
    IncompressibleNavierStokesSolver,
    SolverSettings,
    VelocityDirichlet,
)
from repro.robustness import (
    RobustnessSettings,
    StepFailure,
    recoverable_step,
    validate_scheme_state,
)
from repro.telemetry import TRACER


def beltrami_solver(robustness=None):
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(1)
    flow = BeltramiFlow(0.05)
    bcs = BoundaryConditions(
        {1: VelocityDirichlet(lambda x, y, z, t: flow.velocity(x, y, z, t))}
    )
    s = IncompressibleNavierStokesSolver(
        forest, 2, 0.05, bcs, SolverSettings(solver_tolerance=1e-8),
        robustness=robustness,
    )
    s.initialize(flow.velocity)
    return s


class FaultyConvective:
    """Proxy around the convective operator that poisons the result of
    selected ``apply`` calls (1-based), or of every call from
    ``persistent_from`` on."""

    def __init__(self, inner, fail_calls=(), persistent_from=None):
        self.inner = inner
        self.fail_calls = set(fail_calls)
        self.persistent_from = persistent_from
        self.calls = 0

    def apply(self, u, t):
        self.calls += 1
        out = self.inner.apply(u, t)
        if self.calls in self.fail_calls or (
            self.persistent_from is not None and self.calls >= self.persistent_from
        ):
            out = np.array(out)
            out[0] = np.nan
        return out


class FakeScheme:
    def __init__(self, u, p=None, conv=None):
        self.u_history = [np.asarray(u, dtype=float)]
        self.p_history = [np.asarray(p, dtype=float)] if p is not None else []
        self.conv_history = [np.asarray(conv, dtype=float)] if conv is not None \
            else [np.zeros_like(self.u_history[0])]


class TestValidateSchemeState:
    def setup_method(self):
        self.settings = RobustnessSettings()

    def test_clean_state_passes(self):
        s = FakeScheme([1.0, 2.0], p=[0.5], conv=[0.1, 0.2])
        assert validate_scheme_state(s, 1.0, self.settings) is None

    def test_nan_velocity(self):
        s = FakeScheme([1.0, np.nan])
        assert validate_scheme_state(s, 1.0, self.settings) == "non_finite_velocity"

    def test_inf_pressure(self):
        s = FakeScheme([1.0, 2.0], p=[np.inf])
        assert validate_scheme_state(s, 1.0, self.settings) == "non_finite_pressure"

    def test_nan_convective_eval_caught(self):
        # velocity and pressure are fine, but the cached convective term
        # would poison the next step's extrapolation
        s = FakeScheme([1.0, 2.0], p=[0.5], conv=[np.nan, 0.0])
        assert validate_scheme_state(s, 1.0, self.settings) == "non_finite_convective"

    def test_energy_blowup(self):
        s = FakeScheme([1e6, 1e6])
        settings = RobustnessSettings(energy_growth_limit=100.0)
        assert validate_scheme_state(s, 1.0, settings) == "energy_blowup"

    def test_energy_check_disabled_from_rest(self):
        # prev_energy == 0 (start from rest): growth factor is undefined
        s = FakeScheme([1e6, 1e6])
        settings = RobustnessSettings(energy_growth_limit=100.0)
        assert validate_scheme_state(s, 0.0, settings) is None


class TestRecoverableStep:
    def test_transient_fault_recovers_with_backoff(self):
        solver = beltrami_solver()
        scheme = solver.scheme
        scheme.ops.convective = FaultyConvective(
            scheme.ops.convective, fail_calls={1}
        )
        settings = RobustnessSettings(max_step_retries=2, dt_backoff=0.5)
        TRACER.reset()
        TRACER.enable()
        try:
            events = []
            stats = recoverable_step(scheme, 0.01, settings, events=events)
        finally:
            TRACER.disable()
        # first attempt failed on the convective evaluation, the retry
        # ran at the backed-off step size
        assert stats.dt == pytest.approx(0.005)
        assert scheme.t == pytest.approx(0.005)
        assert np.isfinite(scheme.velocity).all()
        assert len(events) == 1
        assert events[0].kind == "step_retry"
        assert events[0].reason == "non_finite_convective"
        assert events[0].dt == pytest.approx(0.01)
        assert TRACER.counters["recovery.step_retries"] == 1
        assert TRACER.counters["recovery.reasons.non_finite_convective"] == 1

    def test_persistent_fault_raises_step_failure(self):
        solver = beltrami_solver()
        scheme = solver.scheme
        scheme.ops.convective = FaultyConvective(
            scheme.ops.convective, persistent_from=1
        )
        settings = RobustnessSettings(max_step_retries=2, dt_backoff=0.5)
        t0 = scheme.t
        u0 = scheme.u_history[0].copy()
        n_stats = len(scheme.statistics)
        events = []
        with pytest.raises(StepFailure) as exc_info:
            recoverable_step(scheme, 0.01, settings, events=events)
        err = exc_info.value
        assert err.reason == "non_finite_convective"
        assert err.attempts == 3  # 1 try + 2 retries
        assert err.dt == pytest.approx(0.01 * 0.5**2)
        # the scheme is rolled back to its pre-step state
        assert scheme.t == t0
        assert np.array_equal(scheme.u_history[0], u0)
        assert len(scheme.statistics) == n_stats
        kinds = [e.kind for e in events]
        assert kinds == ["step_retry", "step_retry", "step_failure"]

    def test_clean_step_takes_no_events(self):
        solver = beltrami_solver()
        events = []
        settings = RobustnessSettings()
        stats = recoverable_step(solver.scheme, 0.01, settings, events=events)
        assert stats.dt == pytest.approx(0.01)
        assert events == []


class TestSolverIntegration:
    def test_solver_routes_steps_through_recovery(self):
        rb = RobustnessSettings(max_step_retries=2, dt_backoff=0.5)
        solver = beltrami_solver(robustness=rb)
        scheme = solver.scheme
        scheme.ops.convective = FaultyConvective(
            scheme.ops.convective, fail_calls={1}
        )
        stats = solver.step(0.01)
        assert stats.dt == pytest.approx(0.005)
        assert len(solver.recovery_log) == 1
        assert solver.recovery_log[0].reason == "non_finite_convective"
        # subsequent clean steps add nothing
        solver.step(0.01)
        assert len(solver.recovery_log) == 1

    def test_zero_retries_disables_the_harness(self):
        # a zero retry budget bypasses the validation harness entirely
        rb = RobustnessSettings(max_step_retries=0)
        solver = beltrami_solver(robustness=rb)
        stats = solver.step(0.01)
        assert np.isfinite(stats.dt)
        assert solver.recovery_log == []
