"""Tests of the unified RunConfig API: serialization round-trips, the
CLI construction front, and the RunConfig-only constructor contract."""

import argparse
import dataclasses
import json
import math

import pytest

from repro.lung.ventilator import VentilationSettings
from repro.ns.solver import SolverSettings
from repro.robustness import RobustnessSettings, RunConfig


class TestRoundTrip:
    def test_dict_round_trip_defaults(self):
        c = RunConfig()
        assert RunConfig.from_dict(c.to_dict()) == c

    def test_dict_round_trip_customized(self):
        c = RunConfig(
            generations=2,
            degree=3,
            scale=0.8,
            seed=7,
            solver=SolverSettings(solver_tolerance=1e-5, cfl=0.2),
            ventilation=VentilationSettings(peep=800.0),
            robustness=RobustnessSettings(max_step_retries=5, dt_backoff=0.25),
        )
        assert RunConfig.from_dict(c.to_dict()) == c

    def test_trace_timeline_round_trip(self):
        c = RunConfig(workers=2, trace_timeline=True)
        assert RunConfig.from_dict(c.to_dict()) == c
        assert RunConfig.from_json(c.to_json()).trace_timeline is True
        assert RunConfig().trace_timeline is False

    def test_json_round_trip_with_infinite_dt_max(self):
        c = RunConfig()
        assert math.isinf(c.solver.dt_max)
        c2 = RunConfig.from_json(c.to_json())
        assert c2 == c
        assert math.isinf(c2.solver.dt_max)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown RunConfig keys"):
            RunConfig.from_dict({"generations": 1, "turbo": True})

    def test_defaults_filled_lazily(self):
        c = RunConfig()
        assert isinstance(c.solver, SolverSettings)
        assert isinstance(c.ventilation, VentilationSettings)
        assert isinstance(c.robustness, RobustnessSettings)
        assert c.viscosity > 0


class TestRobustnessSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            RobustnessSettings(max_step_retries=-1)
        with pytest.raises(ValueError):
            RobustnessSettings(dt_backoff=1.0)
        with pytest.raises(ValueError):
            RobustnessSettings(dt_backoff=0.0)
        with pytest.raises(ValueError):
            RobustnessSettings(checkpoint_keep=0)

    def test_frozen(self):
        s = RobustnessSettings()
        with pytest.raises(dataclasses.FrozenInstanceError):
            s.max_step_retries = 10


def lung_namespace(**overrides):
    """An argparse namespace matching the `repro lung` parser defaults."""
    ns = argparse.Namespace(
        config=None, generations=None, degree=None, seed=None,
        tolerance=None, checkpoint_dir=None, checkpoint_every=None,
        checkpoint_every_seconds=None, checkpoint_keep=None,
        resume=None, max_step_retries=None,
    )
    for k, v in overrides.items():
        setattr(ns, k, v)
    return ns


class TestFromArgs:
    def test_cli_defaults(self):
        c = RunConfig.from_args(lung_namespace())
        assert c.generations == 1
        assert c.degree == 2
        assert c.seed == 0
        assert c.solver.solver_tolerance == 1e-3

    def test_flag_overrides(self):
        c = RunConfig.from_args(lung_namespace(
            generations=2, degree=3, seed=5, tolerance=1e-6,
            checkpoint_dir="/tmp/ck", checkpoint_every=4,
            checkpoint_keep=2, max_step_retries=1,
        ))
        assert c.generations == 2 and c.degree == 3 and c.seed == 5
        assert c.solver.solver_tolerance == 1e-6
        assert c.robustness.checkpoint_dir == "/tmp/ck"
        assert c.robustness.checkpoint_every_steps == 4
        assert c.robustness.checkpoint_keep == 2
        assert c.robustness.max_step_retries == 1

    def test_trace_timeline_flag(self):
        # the CLI flag carries the trace output path; the config
        # records only that tracing is on
        c = RunConfig.from_args(
            lung_namespace(workers=2, trace_timeline="/tmp/trace.json")
        )
        assert c.trace_timeline is True
        assert RunConfig.from_args(lung_namespace()).trace_timeline is False

    def test_config_file_base_with_flag_override(self, tmp_path):
        base = RunConfig(
            generations=2,
            solver=SolverSettings(solver_tolerance=1e-7),
            robustness=RobustnessSettings(checkpoint_every_steps=9),
        )
        f = tmp_path / "run.json"
        f.write_text(base.to_json())
        c = RunConfig.from_args(lung_namespace(config=str(f), degree=4))
        assert c.generations == 2  # from the file
        assert c.degree == 4  # flag wins
        assert c.solver.solver_tolerance == 1e-7  # file, not the CLI default
        assert c.robustness.checkpoint_every_steps == 9

    def test_config_file_round_trips_through_json_module(self, tmp_path):
        f = tmp_path / "run.json"
        f.write_text(RunConfig().to_json())
        assert RunConfig.from_dict(json.loads(f.read_text())) == RunConfig()


class TestRunConfigOnlyConstructor:
    """The legacy keyword-argument shim is gone: ``config=`` is the only
    simulation constructor signature."""

    def test_from_legacy_kwargs_removed(self):
        assert not hasattr(RunConfig, "from_legacy_kwargs")

    def test_non_config_positional_rejected(self):
        from repro.lung.simulation import LungVentilationSimulation

        with pytest.raises(TypeError, match="RunConfig"):
            LungVentilationSimulation({"generations": 1})

    def test_legacy_kwargs_rejected(self):
        from repro.lung.simulation import LungVentilationSimulation

        with pytest.raises(TypeError):
            LungVentilationSimulation(generations=1, degree=2)


class TestWindkesselScales:
    def test_defaults_and_round_trip(self):
        c = RunConfig(windkessel_resistance_scale=1.5,
                      windkessel_compliance_scale=0.75)
        assert RunConfig.from_dict(c.to_dict()) == c
        assert RunConfig().windkessel_resistance_scale == 1.0
        assert RunConfig().windkessel_compliance_scale == 1.0
