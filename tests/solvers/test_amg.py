"""Tests of the smoothed-aggregation AMG coarse solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.dof_handler import CGDofHandler
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers.amg import (
    SmoothedAggregationAMG,
    aggregate,
    strength_graph,
    symmetric_gauss_seidel,
    tentative_prolongator,
)
from repro.solvers.assemble import assemble_cg_laplace


def poisson_1d(n):
    return sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")


def poisson_3d_matrix(cells=4, degree=1, dirichlet=True):
    bids = {i: 1 for i in range(6)} if dirichlet else {}
    mesh = box(subdivisions=(cells,) * 3, boundary_ids=bids)
    forest = Forest(mesh)
    dof = CGDofHandler(forest, degree, dirichlet_ids=(1,) if dirichlet else ())
    geo = GeometryField(forest, degree)
    return assemble_cg_laplace(dof, geo)


class TestComponents:
    def test_strength_graph_drops_weak(self):
        A = sp.csr_matrix(np.array([[2.0, -1.0, -1e-6], [-1.0, 2.0, 0], [-1e-6, 0, 2.0]]))
        S = strength_graph(A, theta=0.1)
        assert S[0, 1] != 0
        assert S[0, 2] == 0
        assert S[0, 0] == 0  # diagonal excluded

    def test_aggregate_covers_all(self):
        A = poisson_1d(50)
        S = strength_graph(A)
        agg = aggregate(S)
        assert agg.min() >= 0
        assert agg.max() + 1 < 50  # actual coarsening happened

    def test_tentative_prolongator_orthonormal_columns(self):
        agg = np.array([0, 0, 1, 1, 1, 2])
        P = tentative_prolongator(agg)
        G = (P.T @ P).todense()
        assert np.allclose(G, np.eye(3))

    def test_sgs_reduces_residual(self):
        A = poisson_1d(30)
        b = np.ones(30)
        x = np.zeros(30)
        x = symmetric_gauss_seidel(A, b, x)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)


class TestAMGSolve:
    def test_solves_1d_poisson(self):
        A = poisson_1d(400)
        amg = SmoothedAggregationAMG(A, max_coarse=20)
        assert amg.n_levels >= 2
        b = np.ones(400)
        x, hist = amg.solve(b, tol=1e-10)
        assert hist[-1] <= 1e-10 * hist[0]
        assert np.allclose(A @ x, b, atol=1e-8)

    def test_solves_assembled_3d_laplacian(self):
        A = poisson_3d_matrix(cells=4)
        amg = SmoothedAggregationAMG(A, max_coarse=30)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(A.shape[0])
        x, hist = amg.solve(b, tol=1e-10, max_cycles=60)
        assert hist[-1] <= 1e-10 * hist[0]

    def test_convergence_rate_mesh_independent(self):
        """V-cycle reduction factors stay bounded as the mesh refines —
        the O(n) optimality behind the weak scaling of Figure 9."""
        rates = []
        for cells in (3, 6):
            A = poisson_3d_matrix(cells=cells)
            amg = SmoothedAggregationAMG(A, max_coarse=30)
            b = np.ones(A.shape[0])
            _, hist = amg.solve(b, tol=1e-8, max_cycles=50)
            n = len(hist) - 1
            rates.append((hist[-1] / hist[0]) ** (1.0 / n))
        assert rates[1] < 0.6
        assert rates[1] < rates[0] + 0.25

    def test_two_cycle_vmult_is_fixed_preconditioner(self):
        A = poisson_1d(200)
        amg = SmoothedAggregationAMG(A, n_cycles=2, max_coarse=20)
        b = np.ones(200)
        y = amg.vmult(b)
        # two V-cycles should reduce the error substantially
        assert np.linalg.norm(b - A @ y) < 0.2 * np.linalg.norm(b)

    def test_small_matrix_direct(self):
        A = poisson_1d(10)
        amg = SmoothedAggregationAMG(A, max_coarse=50)
        assert amg.n_levels == 1
        x = amg.vmult(np.ones(10))
        assert np.allclose(A @ x, np.ones(10), atol=1e-10)

    def test_singular_neumann_matrix_regularized(self):
        # pure Neumann Laplacian: singular; AMG must still not blow up
        A = poisson_3d_matrix(cells=2, dirichlet=False)
        amg = SmoothedAggregationAMG(A, max_coarse=10)
        b = np.ones(A.shape[0])
        b -= b.mean()  # compatible rhs
        y = amg.vmult(b)
        assert np.all(np.isfinite(y))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            SmoothedAggregationAMG(sp.csr_matrix(np.ones((3, 4))))
