"""The in-place Chebyshev recurrence must be *bitwise* identical to the
plain allocating form it replaced — the smoother sits inside the
multigrid V-cycle, where any drift would change convergence histories.
"""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers import (
    ChebyshevSmoother,
    JacobiPreconditioner,
    single_precision_operator,
)


def reference_smooth(sm, b, x=None):
    """The textbook allocating three-term recurrence, written with fresh
    temporaries on every line (what ``smooth`` computed before the
    in-place rewrite)."""
    op, P = sm.op, sm.jacobi
    theta, delta = sm.theta, sm.delta
    if x is None:
        x = np.zeros_like(b)
        r = b.copy()
    else:
        r = b - op.vmult(x)
    sigma = theta / delta
    rho_old = 1.0 / sigma
    d = P.vmult(r) / theta
    x = x + d
    for _ in range(1, sm.degree):
        rho = 1.0 / (2.0 * sigma - rho_old)
        r = r - op.vmult(d)
        d = (rho * rho_old) * d + (2.0 * rho / delta) * P.vmult(r)
        x = x + d
        rho_old = rho
    return x


@pytest.fixture(scope="module")
def smoother():
    forest = Forest(box(subdivisions=(2, 1, 1), boundary_ids={0: 1})).refine_all(1)
    geo = GeometryField(forest, 2)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, 2)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
    return ChebyshevSmoother(op, degree=3, jacobi=JacobiPreconditioner(op))


class TestInPlaceChebyshevBitwise:
    def test_zero_start_bitwise(self, smoother):
        rng = np.random.default_rng(42)
        b = rng.standard_normal(smoother.n_dofs)
        assert np.array_equal(smoother.smooth(b), reference_smooth(smoother, b))

    def test_initial_guess_bitwise(self, smoother):
        rng = np.random.default_rng(43)
        b = rng.standard_normal(smoother.n_dofs)
        x0 = rng.standard_normal(smoother.n_dofs)
        assert np.array_equal(
            smoother.smooth(b, x0), reference_smooth(smoother, b, x0)
        )

    def test_caller_x_not_mutated(self, smoother):
        rng = np.random.default_rng(44)
        b = rng.standard_normal(smoother.n_dofs)
        x0 = rng.standard_normal(smoother.n_dofs)
        keep = x0.copy()
        y = smoother.smooth(b, x0)
        assert np.array_equal(x0, keep)
        assert y is not x0

    def test_repeated_applications_bitwise(self, smoother):
        """Warm workspace/Jacobi buffers must not change results."""
        rng = np.random.default_rng(45)
        b = rng.standard_normal(smoother.n_dofs)
        first = smoother.smooth(b)
        for _ in range(3):
            assert np.array_equal(smoother.smooth(b), first)

    def test_float32_operator_bitwise(self, smoother):
        """Mixed-precision V-cycle configuration: float32 operator and
        Jacobi diagonal, float32 vectors."""
        sp = single_precision_operator(smoother.op)
        jac = JacobiPreconditioner(sp)
        sm = ChebyshevSmoother(sp, degree=3, jacobi=jac)
        rng = np.random.default_rng(46)
        b = rng.standard_normal(sm.n_dofs).astype(np.float32)
        y = sm.smooth(b)
        y_ref = reference_smooth(sm, b)
        assert y.dtype == y_ref.dtype
        assert np.array_equal(y, y_ref)

    def test_smoother_reduces_residual(self, smoother):
        rng = np.random.default_rng(47)
        b = rng.standard_normal(smoother.n_dofs)
        x = smoother.smooth(b)
        assert np.linalg.norm(b - smoother.op.vmult(x)) < np.linalg.norm(b)
