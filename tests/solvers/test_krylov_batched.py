"""Tests of the ensemble-batched PCG path (:func:`_pcg_batched`):
per-member convergence masks, member iteration counts, and the E=1
bitwise-dispatch contract of :func:`conjugate_gradient`."""

import numpy as np
import pytest

from repro.solvers.krylov import conjugate_gradient


class DiagonalOperator:
    """SPD (or deliberately indefinite) diagonal test operator; vmult
    broadcasts over a leading ensemble axis like the real operators."""

    def __init__(self, d):
        self.d = np.asarray(d, dtype=float)
        self.n_dofs = self.d.size

    def vmult(self, x):
        return self.d * x


@pytest.fixture
def op(rng):
    return DiagonalOperator(rng.uniform(1.0, 10.0, size=40))


class TestE1Dispatch:
    def test_e1_bitwise_matches_flat(self, op, rng):
        b = rng.standard_normal(op.n_dofs)
        flat = conjugate_gradient(op, b, tol=1e-12)
        batched = conjugate_gradient(op, b[None], tol=1e-12)
        assert batched.x.shape == (1, op.n_dofs)
        assert np.array_equal(batched.x[0], flat.x)
        assert batched.n_iterations == flat.n_iterations
        assert batched.member_iterations == [flat.n_iterations]
        assert batched.converged and flat.converged

    def test_flat_solve_has_no_member_iterations(self, op):
        res = conjugate_gradient(op, np.ones(op.n_dofs), tol=1e-12)
        assert res.member_iterations is None


class TestBatchedConvergence:
    def test_members_match_independent_flat_solves(self, op, rng):
        B = rng.standard_normal((4, op.n_dofs))
        batched = conjugate_gradient(op, B, tol=1e-12)
        assert batched.converged
        for e in range(4):
            flat = conjugate_gradient(op, B[e], tol=1e-12)
            np.testing.assert_allclose(batched.x[e], flat.x,
                                       rtol=1e-10, atol=1e-12)

    def test_member_iterations_track_per_member_difficulty(self):
        # diagonal with 3 distinct eigenvalues: CG needs as many
        # iterations as eigenvalues active in the right-hand side
        d = np.array([1.0] * 4 + [4.0] * 4 + [9.0] * 4)
        op = DiagonalOperator(d)
        easy = np.zeros(12)
        easy[0] = 1.0  # one eigenvalue: converges in 1 iteration
        hard = np.ones(12)  # all three eigenvalues
        res = conjugate_gradient(op, np.stack([easy, hard]), tol=1e-12)
        assert res.converged
        assert res.member_iterations[0] == 1
        assert res.member_iterations[1] == 3
        # the early member froze at its converged answer
        np.testing.assert_allclose(res.x[0], easy / d, rtol=1e-13)
        np.testing.assert_allclose(res.x[1], hard / d, rtol=1e-12)

    def test_zero_rhs_member_converges_instantly(self, op, rng):
        b = rng.standard_normal(op.n_dofs)
        res = conjugate_gradient(op, np.stack([np.zeros(op.n_dofs), b]),
                                 tol=1e-12)
        assert res.converged
        assert res.member_iterations[0] == 0
        assert np.array_equal(res.x[0], np.zeros(op.n_dofs))

    def test_all_members_trivial(self, op):
        res = conjugate_gradient(op, np.zeros((3, op.n_dofs)), tol=1e-12)
        assert res.converged
        assert res.n_iterations == 0
        assert res.member_iterations == [0, 0, 0]


class TestBatchedFailures:
    def test_breakdown_on_indefinite_member(self):
        d = np.ones(10)
        d[0] = -1.0  # not SPD: p^T A p goes non-positive
        op = DiagonalOperator(d)
        b = np.ones((2, 10))
        res = conjugate_gradient(op, b, tol=1e-14)
        assert not res.converged
        assert res.failure_reason == "breakdown"

    def test_nan_rhs_reports_nan_residual(self, op):
        b = np.ones((2, op.n_dofs))
        b[1, 0] = np.nan
        res = conjugate_gradient(op, b, tol=1e-12)
        assert not res.converged
        assert res.failure_reason == "nan_residual"
        assert res.member_iterations == [0, 0]

    def test_max_iterations(self, op, rng):
        B = rng.standard_normal((2, op.n_dofs))
        res = conjugate_gradient(op, B, tol=1e-15, max_iter=2)
        assert not res.converged
        assert res.failure_reason == "max_iterations"
        assert all(m <= 2 for m in res.member_iterations)
