"""Tests of CG, Jacobi, Chebyshev, and the Lanczos eigenvalue estimate."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers import (
    ChebyshevSmoother,
    JacobiPreconditioner,
    conjugate_gradient,
    lanczos_max_eigenvalue,
)


class DenseOp:
    def __init__(self, A):
        self.A = np.asarray(A)

    @property
    def n_dofs(self):
        return self.A.shape[0]

    def vmult(self, x):
        return self.A @ x

    def diagonal(self):
        return np.diag(self.A).copy()


def spd_matrix(n, cond=100.0, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigs = np.geomspace(1.0, cond, n)
    return (Q * eigs) @ Q.T


class TestConjugateGradient:
    def test_solves_dense_spd(self, rng):
        A = spd_matrix(40)
        x_ref = rng.standard_normal(40)
        b = A @ x_ref
        res = conjugate_gradient(DenseOp(A), b, tol=1e-12, max_iter=200)
        assert res.converged
        assert np.allclose(res.x, x_ref, atol=1e-8)

    def test_jacobi_preconditioning_reduces_iterations(self):
        # strongly scaled diagonal -> Jacobi helps a lot
        A = spd_matrix(40, cond=10.0)
        D = np.diag(np.geomspace(1, 1e4, 40))
        A = D @ A @ D
        op = DenseOp(A)
        b = np.ones(40)
        plain = conjugate_gradient(op, b, tol=1e-10, max_iter=2000)
        pre = conjugate_gradient(op, b, JacobiPreconditioner(op), tol=1e-10, max_iter=2000)
        assert pre.converged
        assert pre.n_iterations < plain.n_iterations

    def test_initial_guess(self):
        A = spd_matrix(20)
        b = np.ones(20)
        x_exact = np.linalg.solve(A, b)
        res = conjugate_gradient(DenseOp(A), b, x0=x_exact, tol=1e-10)
        assert res.n_iterations == 0

    def test_zero_rhs(self):
        A = spd_matrix(10)
        res = conjugate_gradient(DenseOp(A), np.zeros(10))
        assert res.converged and res.n_iterations == 0

    def test_non_spd_reports_breakdown(self):
        A = -np.eye(5)
        res = conjugate_gradient(DenseOp(A), np.ones(5))
        assert not res.converged
        assert res.failure_reason == "breakdown"

    def test_nan_rhs_reports_nan_residual(self):
        A = spd_matrix(10)
        b = np.ones(10)
        b[3] = np.nan
        res = conjugate_gradient(DenseOp(A), b)
        assert not res.converged
        assert res.failure_reason == "nan_residual"
        assert res.n_iterations == 0  # detected before iterating

    def test_max_iter_reports_failure(self):
        A = spd_matrix(50, cond=1e6, seed=3)
        res = conjugate_gradient(DenseOp(A), np.ones(50), tol=1e-14, max_iter=3)
        assert not res.converged
        assert res.failure_reason == "max_iterations"

    def test_converged_has_no_failure_reason(self):
        A = spd_matrix(20)
        res = conjugate_gradient(DenseOp(A), np.ones(20), tol=1e-10, max_iter=200)
        assert res.converged and res.failure_reason is None


class TestReductionRate:
    def test_one_iteration_reports_actual_reduction(self):
        # identity system: CG converges in exactly one iteration, and the
        # reported rate must be the actual one-step reduction, not 0.0
        res = conjugate_gradient(DenseOp(np.eye(8)), np.ones(8), tol=1e-10)
        assert res.converged and res.n_iterations == 1
        assert len(res.residuals) == 2
        assert res.reduction_rate == pytest.approx(
            res.residuals[1] / res.residuals[0]
        )
        assert res.reduction_rate < 1e-10

    def test_instant_convergence_is_zero(self):
        # exact initial guess: zero iterations, rate 0.0 (instant)
        A = spd_matrix(20)
        b = np.ones(20)
        res = conjugate_gradient(DenseOp(A), b, x0=np.linalg.solve(A, b), tol=1e-10)
        assert res.converged and res.n_iterations == 0
        assert res.reduction_rate == 0.0

    def test_no_progress_is_one(self):
        # a non-converged result with a single residual means no progress
        from repro.solvers.krylov import SolverResult

        res = SolverResult(np.zeros(3), 0, False, [1.0])
        assert res.reduction_rate == 1.0

    def test_multi_iteration_geometric_mean(self):
        from repro.solvers.krylov import SolverResult

        res = SolverResult(np.zeros(2), 2, True, [1.0, 0.1, 0.01])
        assert res.reduction_rate == pytest.approx(0.1)


class TestLanczos:
    @pytest.mark.parametrize("cond", [10.0, 1000.0])
    def test_estimates_largest_eigenvalue(self, cond):
        A = spd_matrix(60, cond=cond, seed=5)
        est = lanczos_max_eigenvalue(DenseOp(A), n_iter=25)
        lam = np.linalg.eigvalsh(A).max()
        assert 0.7 * lam <= est <= 1.001 * lam

    def test_preconditioned_estimate(self):
        A = spd_matrix(30, cond=100, seed=6)
        op = DenseOp(A)
        est = lanczos_max_eigenvalue(op, JacobiPreconditioner(op), n_iter=20)
        Dinv = np.diag(1.0 / np.diag(A))
        lam = np.abs(np.linalg.eigvals(Dinv @ A)).max()
        assert 0.6 * lam <= est <= 1.05 * lam


class TestChebyshev:
    def test_damps_targeted_spectrum(self):
        A = spd_matrix(50, cond=200, seed=7)
        sm = ChebyshevSmoother(DenseOp(A), degree=3, smoothing_range=15.0)
        # the theoretical bound on [a, b] is 1/|T_3((b+a)/(b-a))| ~ 0.45
        for lam in np.linspace(sm.lambda_min, sm.lambda_max / 1.2, 10):
            assert sm.error_amplification(lam) < 0.46
        # degree 6 damps much harder
        sm6 = ChebyshevSmoother(DenseOp(A), degree=6, smoothing_range=15.0)
        for lam in np.linspace(sm6.lambda_min, sm6.lambda_max / 1.2, 10):
            assert sm6.error_amplification(lam) < sm.error_amplification(lam) + 1e-12

    def test_smoother_reduces_residual(self):
        A = spd_matrix(50, cond=50, seed=8)
        op = DenseOp(A)
        sm = ChebyshevSmoother(op, degree=3)
        b = np.ones(50)
        x = sm.smooth(b)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)

    def test_post_smoothing_with_initial_guess(self):
        A = spd_matrix(30, seed=9)
        op = DenseOp(A)
        sm = ChebyshevSmoother(op, degree=3)
        b = np.ones(30)
        x1 = sm.smooth(b)
        x2 = sm.smooth(b, x1)
        r1 = np.linalg.norm(b - A @ x1)
        r2 = np.linalg.norm(b - A @ x2)
        assert r2 < r1

    def test_invalid_degree(self):
        A = spd_matrix(5)
        with pytest.raises(ValueError):
            ChebyshevSmoother(DenseOp(A), degree=0)

    def test_fixed_point_is_solution(self):
        A = spd_matrix(20, seed=10)
        op = DenseOp(A)
        sm = ChebyshevSmoother(op, degree=3)
        x_exact = np.linalg.solve(A, np.ones(20))
        x = sm.smooth(np.ones(20), x_exact)
        assert np.allclose(x, x_exact, atol=1e-10)


class TestOnDGLaplacian:
    def make_op(self):
        mesh = box(subdivisions=(2, 2, 2), boundary_ids={0: 1})
        forest = Forest(mesh)
        geo = GeometryField(forest, 2)
        conn = build_connectivity(forest)
        dof = DGDofHandler(forest, 2)
        return dof, geo, DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))

    def test_cg_with_jacobi_converges(self, rng):
        dof, geo, op = self.make_op()
        b = rng.standard_normal(dof.n_dofs)
        res = conjugate_gradient(op, b, JacobiPreconditioner(op), tol=1e-8, max_iter=2000)
        assert res.converged
        assert np.allclose(op.vmult(res.x), b, atol=1e-6 * np.linalg.norm(b))

    def test_chebyshev_smooths_dg_operator(self, rng):
        dof, geo, op = self.make_op()
        sm = ChebyshevSmoother(op, degree=3)
        b = rng.standard_normal(dof.n_dofs)
        x = sm.smooth(b)
        # one smoothing application reduces the residual
        assert np.linalg.norm(b - op.vmult(x)) < np.linalg.norm(b)
