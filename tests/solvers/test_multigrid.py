"""Tests of transfers and the hybrid multigrid preconditioner — iteration
counts and mixed precision per Section 3.4 / Figures 9-10."""

import numpy as np

from repro.core.dof_handler import CGDofHandler, DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import bifurcation, box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers import (
    HybridMultigridPreconditioner,
    conjugate_gradient,
    dg_from_cg,
    h_transfer,
    p_transfer,
)


class TestTransfers:
    def test_dg_from_cg_embeds_polynomials(self):
        forest = Forest(box(subdivisions=(2, 1, 1)))
        cg = CGDofHandler(forest, 2)
        dg = DGDofHandler(forest, 2)
        T = dg_from_cg(dg, cg)
        # a linear function in the CG space maps to the same function in DG
        pts = cg.nodal_points()
        masters = np.nonzero(~cg.is_constrained)[0]
        f = lambda p: 2 * p[:, 0] - p[:, 1] + 0.5 * p[:, 2]
        xc = f(pts)[masters]
        xd = T.prolongate(xc)
        geo = GeometryField(forest, 2)
        cm = geo.cell_metrics()
        vals = geo.kernel.values(dg.cell_view(xd))
        exact = 2 * cm.points[:, 0] - cm.points[:, 1] + 0.5 * cm.points[:, 2]
        assert np.allclose(vals, exact, atol=1e-10)

    def test_p_transfer_preserves_coarse_polynomials(self):
        forest = Forest(box(subdivisions=(2, 1, 1)))
        fine = CGDofHandler(forest, 3)
        coarse = CGDofHandler(forest, 1)
        T = p_transfer(fine, coarse)
        pts_c = coarse.nodal_points()
        masters_c = np.nonzero(~coarse.is_constrained)[0]
        xc = (1 + pts_c[:, 0] + 2 * pts_c[:, 2])[masters_c]
        xf = T.prolongate(xc)
        pts_f = fine.nodal_points()
        masters_f = np.nonzero(~fine.is_constrained)[0]
        exact = (1 + pts_f[:, 0] + 2 * pts_f[:, 2])[masters_f]
        assert np.allclose(xf, exact, atol=1e-10)

    def test_h_transfer_preserves_polynomials(self):
        fine_forest = Forest(box(subdivisions=(1, 1, 1))).refine_all(2)
        coarse_forest, cmap = fine_forest.global_coarsening_level()
        fine = CGDofHandler(fine_forest, 2)
        coarse = CGDofHandler(coarse_forest, 2)
        T = h_transfer(fine, coarse, cmap)
        pts_c = coarse.nodal_points()
        mc = np.nonzero(~coarse.is_constrained)[0]
        f = lambda p: p[:, 0] ** 2 - p[:, 1] * p[:, 2]
        xc = f(pts_c)[mc]
        xf = T.prolongate(xc)
        pts_f = fine.nodal_points()
        mf = np.nonzero(~fine.is_constrained)[0]
        assert np.allclose(xf, f(pts_f)[mf], atol=1e-10)

    def test_h_transfer_on_adaptive_mesh(self):
        f = Forest(box(subdivisions=(2, 1, 1)))
        f = f.refine([f.leaves[0]]).balance()
        fine_forest = f.refine_all(1)
        coarse_forest, cmap = fine_forest.global_coarsening_level()
        fine = CGDofHandler(fine_forest, 1)
        coarse = CGDofHandler(coarse_forest, 1)
        T = h_transfer(fine, coarse, cmap)
        pts_c = coarse.nodal_points()
        mc = np.nonzero(~coarse.is_constrained)[0]
        xc = (3 * pts_c[:, 0] - pts_c[:, 2])[mc]
        xf = T.prolongate(xc)
        pts_f = fine.nodal_points()
        mf = np.nonzero(~fine.is_constrained)[0]
        assert np.allclose(xf, (3 * pts_f[:, 0] - pts_f[:, 2])[mf], atol=1e-10)

    def test_restriction_is_transpose(self, rng):
        forest = Forest(box(subdivisions=(2, 1, 1)))
        fine = CGDofHandler(forest, 2)
        coarse = CGDofHandler(forest, 1)
        T = p_transfer(fine, coarse)
        xc = rng.standard_normal(coarse.n_dofs)
        rf = rng.standard_normal(fine.n_dofs)
        assert np.isclose(rf @ T.prolongate(xc), xc @ T.restrict(rf), rtol=1e-12)


def make_dg_poisson(forest, degree, dirichlet_mesh_ids=(1,)):
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=dirichlet_mesh_ids)
    return dof, geo, op


class TestHybridMultigrid:
    def test_level_structure(self):
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
        forest = Forest(mesh).refine_all(2)
        _, _, op = make_dg_poisson(forest, 3)
        mg = HybridMultigridPreconditioner(op)
        desc = mg.describe()
        assert "DG(k=3)" in desc
        assert "CG(k=3)" in desc
        assert "CG(k=1" in desc
        assert "AMG" in desc
        # DG, CG3, CG1 (p), then 2 h-levels, + AMG
        assert mg.n_levels >= 5

    def test_preconditioned_cg_few_iterations(self, rng):
        """The tol=1e-10 solve should take O(10) iterations on a box —
        the bifurcation case of Figure 9 reports 9."""
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1, 1: 2})
        forest = Forest(mesh).refine_all(2)
        dof, _, op = make_dg_poisson(forest, 3, (1, 2))
        mg = HybridMultigridPreconditioner(op)
        b = rng.standard_normal(dof.n_dofs)
        res = conjugate_gradient(op, b, mg, tol=1e-10, max_iter=40)
        assert res.converged
        assert res.n_iterations <= 16

    def test_iteration_count_mesh_independent(self):
        """Optimal O(n) complexity: iterations do not grow with refinement
        (the property behind the weak scaling of Figure 9)."""
        its = []
        for levels in (1, 2):
            mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1, 1: 2})
            forest = Forest(mesh).refine_all(levels)
            dof, _, op = make_dg_poisson(forest, 2, (1, 2))
            mg = HybridMultigridPreconditioner(op)
            b = np.ones(dof.n_dofs)
            res = conjugate_gradient(op, b, mg, tol=1e-10, max_iter=60)
            assert res.converged
            its.append(res.n_iterations)
        assert its[1] <= its[0] + 3

    def test_single_vs_double_precision_same_iterations(self):
        """Running the V-cycle in single precision must not change the CG
        iteration count appreciably (Section 3.4, citing [44])."""
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
        forest = Forest(mesh).refine_all(1)
        dof, _, op = make_dg_poisson(forest, 3)
        b = np.ones(dof.n_dofs)
        mg_sp = HybridMultigridPreconditioner(op, precision=np.float32)
        mg_dp = HybridMultigridPreconditioner(op, precision=np.float64)
        res_sp = conjugate_gradient(op, b, mg_sp, tol=1e-10, max_iter=60)
        res_dp = conjugate_gradient(op, b, mg_dp, tol=1e-10, max_iter=60)
        assert res_sp.converged and res_dp.converged
        assert abs(res_sp.n_iterations - res_dp.n_iterations) <= 2

    def test_hanging_node_mesh_converges(self):
        """Multigrid with global coarsening on a locally refined forest."""
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
        f = Forest(mesh).refine_all(1)
        f = f.refine([leaf for leaf in f.leaves if leaf.tree == 0]).balance()
        dof, _, op = make_dg_poisson(f, 2)
        mg = HybridMultigridPreconditioner(op)
        b = np.ones(dof.n_dofs)
        res = conjugate_gradient(op, b, mg, tol=1e-10, max_iter=60)
        assert res.converged
        assert res.n_iterations <= 25

    def test_bifurcation_geometry(self):
        """The Figure-9 setting: Dirichlet at in/outlets, Neumann on the
        circumferential walls, bifurcation geometry."""
        mesh = bifurcation()
        forest = Forest(mesh).refine_all(1)
        dof, _, op = make_dg_poisson(forest, 2, (1, 2, 3))
        mg = HybridMultigridPreconditioner(op)
        b = np.ones(dof.n_dofs)
        res = conjugate_gradient(op, b, mg, tol=1e-10, max_iter=60)
        assert res.converged
        assert res.n_iterations <= 25

    def test_all_dirichlet_cube(self):
        """All-Dirichlet boundaries fully constrain the coarsest corners;
        the hierarchy must stop before an empty level (regression)."""
        mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
        forest = Forest(mesh).refine_all(2)
        dof, _, op = make_dg_poisson(forest, 3)
        mg = HybridMultigridPreconditioner(op)
        assert all(lev.n_dofs > 0 for lev in mg.levels)
        res = conjugate_gradient(op, np.ones(dof.n_dofs), mg, tol=1e-10, max_iter=40)
        assert res.converged and res.n_iterations <= 15

    def test_amg_called_once_per_vcycle(self):
        mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
        forest = Forest(mesh).refine_all(1)
        dof, _, op = make_dg_poisson(forest, 2)
        mg = HybridMultigridPreconditioner(op)
        mg.vmult(np.ones(dof.n_dofs))
        assert mg.amg_calls == 1
