"""Tests of the numerics instrumentation: CG call-site outcome
counters, per-MG-level diagnostics, and Chebyshev eigenvalue gauges."""

import ast
from pathlib import Path

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers import (
    ChebyshevSmoother,
    HybridMultigridPreconditioner,
    conjugate_gradient,
)
from repro.telemetry import METRICS, TRACER

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture
def metrics():
    """The process-global registry, enabled and zeroed for one test."""
    METRICS.reset()
    METRICS.enable()
    yield METRICS
    METRICS.disable()
    METRICS.reset()


class DenseOp:
    def __init__(self, A):
        self.A = np.asarray(A)

    @property
    def n_dofs(self):
        return self.A.shape[0]

    def vmult(self, x):
        return self.A @ x

    def diagonal(self):
        return np.diag(self.A).copy()


def spd_matrix(n, cond=100.0, seed=0):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigs = np.geomspace(1.0, cond, n)
    return (Q * eigs) @ Q.T


def make_dg_poisson(refinements=1, degree=2):
    mesh = box(subdivisions=(2, 1, 1), boundary_ids={0: 1})
    forest = Forest(mesh).refine_all(refinements)
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    return dof, DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))


class TestCGOutcomeCounters:
    def test_every_solve_records_a_failure_reason(self, metrics):
        """Acceptance (CG audit): each call site's failure_reason
        counters — including 'none' for converged solves — sum to its
        solves total, in both the metric registry and the tracer."""
        TRACER.reset()
        TRACER.enable()
        try:
            A = spd_matrix(30)
            op = DenseOp(A)
            b = np.ones(30)
            r1 = conjugate_gradient(op, b, tol=1e-10, max_iter=200,
                                    name="pressure")
            r2 = conjugate_gradient(op, b, tol=1e-14, max_iter=2,
                                    name="pressure")
            r3 = conjugate_gradient(op, b, tol=1e-10, max_iter=200,
                                    name="viscous")
        finally:
            TRACER.disable()
        assert r1.converged and r3.converged and not r2.converged
        assert r2.failure_reason == "max_iterations"

        solves = metrics.get("repro_cg_solves_total")
        reasons = metrics.get("repro_cg_failure_reason_total")
        for site in ("pressure", "viscous"):
            total = solves.labels(site).value
            by_reason = sum(
                child.value
                for key, child in reasons.children.items()
                if key[0] == site
            )
            assert total > 0
            assert by_reason == total
        assert reasons.labels(("pressure", "none")).value == 1
        assert reasons.labels(("pressure", "max_iterations")).value == 1
        assert reasons.labels(("viscous", "none")).value == 1
        # the tracer mirrors the same outcome-per-solve bookkeeping
        assert TRACER.counters["cg[pressure].failure_reason.none"] == 1
        assert TRACER.counters[
            "cg[pressure].failure_reason.max_iterations"] == 1
        assert (TRACER.counters["cg[pressure].solves"]
                == 1 + 1)

    def test_unnamed_solves_report_under_unnamed(self, metrics):
        A = spd_matrix(10)
        conjugate_gradient(DenseOp(A), np.ones(10), tol=1e-10, max_iter=100)
        assert metrics.get("repro_cg_solves_total").labels("unnamed").value == 1

    def test_iteration_and_reduction_histograms(self, metrics):
        A = spd_matrix(30)
        res = conjugate_gradient(DenseOp(A), np.ones(30), tol=1e-10,
                                 max_iter=200, name="poisson")
        hist = metrics.get("repro_cg_iterations").labels("poisson")
        assert hist.count == 1
        assert hist.sum == res.n_iterations
        red = metrics.get("repro_cg_residual_reduction").labels("poisson")
        assert red.count == 1
        assert 0 < red.sum < 1
        gauge = metrics.get("repro_cg_last_relative_residual")
        assert gauge.labels("poisson").value <= 1e-10

    def test_all_cg_call_sites_are_labeled(self):
        """Static audit: every ``conjugate_gradient(...)`` call in the
        library passes a ``name=`` (or a computed label), so no solve
        can report under the catch-all 'unnamed' site."""
        unlabeled = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                fn = node.func
                fname = (fn.id if isinstance(fn, ast.Name)
                         else fn.attr if isinstance(fn, ast.Attribute)
                         else "")
                if fname != "conjugate_gradient":
                    continue
                if not any(kw.arg == "name" for kw in node.keywords):
                    unlabeled.append(f"{path.relative_to(SRC)}:{node.lineno}")
        assert not unlabeled, (
            "CG call sites without a telemetry name= label: "
            + ", ".join(unlabeled)
        )


class TestMultigridDiagnostics:
    def test_per_level_histograms_and_dof_gauges(self, metrics):
        _, op = make_dg_poisson()
        mg = HybridMultigridPreconditioner(op)
        rng = np.random.default_rng(3)
        b = rng.standard_normal(op.n_dofs)
        res = conjugate_gradient(op, b, mg, tol=1e-8, max_iter=40,
                                 name="pressure")
        assert res.converged

        assert metrics.get("repro_mg_vcycles_total").value == res.n_iterations
        assert metrics.get("repro_mg_amg_solves_total").value == res.n_iterations
        assert metrics.get("repro_mg_nonfinite_vcycles_total").value == 0

        dofs = metrics.get("repro_mg_level_dofs")
        for lev in mg.levels:
            assert dofs.labels(lev.name).value == lev.n_dofs

        # smoothed levels only: the coarsest is handed to AMG directly
        level_names = [lev.name for lev in mg.levels[:-1]]
        assert level_names
        pre = metrics.get("repro_mg_presmooth_reduction")
        full = metrics.get("repro_mg_level_reduction")
        for name in level_names:
            h_pre = pre.labels(name)
            h_full = full.labels(name)
            assert h_pre.count == res.n_iterations
            assert h_full.count == res.n_iterations
            # smoothing makes progress, and the full level visit (with
            # the coarse correction) does at least as well on average
            assert 0 < h_pre.sum / h_pre.count <= 1.0
            assert h_full.sum / h_full.count <= h_pre.sum / h_pre.count

    def test_disabled_registry_records_nothing(self):
        assert not METRICS.enabled
        _, op = make_dg_poisson()
        mg = HybridMultigridPreconditioner(op)
        b = np.ones(op.n_dofs)
        conjugate_gradient(op, b, mg, tol=1e-8, max_iter=40, name="pressure")
        assert METRICS.get("repro_mg_vcycles_total").value == 0
        assert METRICS.get("repro_mg_presmooth_reduction").children == {}


class TestChebyshevGauges:
    def test_eigenvalue_estimates_published_per_size(self, metrics):
        A = spd_matrix(24, cond=50.0)
        sm = ChebyshevSmoother(DenseOp(A))
        lam_max = metrics.get("repro_chebyshev_lambda_max").labels("24")
        lam_min = metrics.get("repro_chebyshev_lambda_min").labels("24")
        assert lam_max.value == pytest.approx(sm.lambda_max)
        assert lam_min.value == pytest.approx(sm.lambda_min)
        assert 0 < lam_min.value < lam_max.value


class TestFallbackCounters:
    def test_escalation_and_tier_counters(self, metrics):
        from repro.robustness.recovery import (
            FallbackTier,
            PressureFallbackChain,
        )

        A = spd_matrix(30)
        op = DenseOp(A)
        chain = PressureFallbackChain([
            # tier 0 gets a 1-iteration budget: guaranteed to fail
            FallbackTier("cheap", lambda: None, max_iter_scale=0.001),
            FallbackTier("robust", lambda: None, max_iter_scale=1.0),
        ])
        res = chain.solve(op, np.ones(30), tol=1e-10, max_iter=500)
        assert res.converged and res.tier == "robust"
        tier = metrics.get("repro_fallback_tier_total")
        assert tier.labels(("pressure", "robust")).value == 1
        esc = metrics.get("repro_fallback_escalations_total")
        assert esc.labels("pressure").value == 1
        assert metrics.get(
            "repro_fallback_exhausted_total").children == {}
