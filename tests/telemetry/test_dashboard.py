"""Tests of the self-contained HTML run dashboard."""

import pytest

from repro.telemetry import (
    METRICS,
    RunLogWriter,
    Tracer,
    render_html_dashboard,
    write_html_dashboard,
)
from repro.telemetry.metrics import export_metrics, snapshot_doc
from repro.timeint.dual_splitting import StepStatistics


def make_stats(i, wall=0.1):
    return StepStatistics(
        dt=0.01,
        t=0.01 * (i + 1),
        pressure_iterations=3 + i,
        viscous_iterations=2,
        penalty_iterations=5,
        cfl=0.4,
        wall_time=wall,
        pressure_residual=10.0 ** (-i - 2),
        substep_seconds={"pressure_poisson": 0.06 * wall / 0.1},
    )


def write_log(path, n_steps=5, extra=None):
    tr = Tracer(enabled=True)
    tr.incr("recovery.retries.nan_detected", 2)
    with RunLogWriter(path, meta={"command": "lung", "n_dofs": 99}) as w:
        for i in range(n_steps):
            w.write_step(
                make_stats(i),
                extra={"inflow_m3_s": 1e-4 * i,
                       "tidal_volume_ml": 20.0 * i,
                       **(extra or {})},
            )
        w.write_summary(tr)
    return path


class TestRenderDashboard:
    def test_self_contained_html_with_sparklines(self, tmp_path):
        """Acceptance: the dashboard is one self-contained HTML file —
        inline CSS/SVG, no external fetches — with populated charts."""
        log = write_log(tmp_path / "run.jsonl")
        out = tmp_path / "dash.html"
        write_html_dashboard(log, out)
        html = out.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html and "polyline" in html
        # no external resources: everything inline
        assert "http://" not in html and "https://" not in html
        assert "<script src" not in html and "<link" not in html
        # dark mode ships with the file
        assert "prefers-color-scheme: dark" in html
        # headline tiles and series cards
        assert "not enough data" not in html
        assert "steps" in html and "sim time" in html
        assert "pressure residual" in html.lower()

    def test_recovery_counters_surface_in_robustness_section(self, tmp_path):
        log = write_log(tmp_path / "run.jsonl")
        html = render_html_dashboard(*_read(log))
        assert "recovery.retries.nan_detected" in html

    def test_metrics_doc_renders_catalog(self, tmp_path):
        METRICS.reset()
        METRICS.enable()
        try:
            METRICS.counter("repro_dash_demo_total", "demo counter").inc(4)
            doc = snapshot_doc(METRICS, meta={"command": "test"})
        finally:
            METRICS.disable()
            METRICS.reset()
        log = write_log(tmp_path / "run.jsonl")
        header, steps, summary = _read(log)
        html = render_html_dashboard(header, steps, summary, metrics_doc=doc)
        assert "repro_dash_demo_total" in html
        assert "demo counter" in html

    def test_metrics_files_merged_into_dashboard(self, tmp_path):
        METRICS.reset()
        METRICS.enable()
        try:
            METRICS.counter("repro_dash_demo_total", "demo counter").inc(2)
            export_metrics(METRICS, tmp_path / "w1.json")
            export_metrics(METRICS, tmp_path / "w2.json")
        finally:
            METRICS.disable()
            METRICS.reset()
        log = write_log(tmp_path / "run.jsonl")
        out = tmp_path / "dash.html"
        write_html_dashboard(
            log, out,
            metrics_paths=(tmp_path / "w1.json", tmp_path / "w2.json"),
        )
        html = out.read_text()
        assert "repro_dash_demo_total" in html
        assert ">4<" in html or ">4.00<" in html or "4" in html

    def test_truncated_log_still_renders(self, tmp_path):
        log = write_log(tmp_path / "run.jsonl")
        lines = log.read_text().splitlines()
        # drop the summary and mangle the last step record
        log.write_text("\n".join(lines[:-2] + ["{not json"]) + "\n")
        out = tmp_path / "dash.html"
        with pytest.warns(RuntimeWarning):
            write_html_dashboard(log, out)
        html = out.read_text()
        assert "<svg" in html

    def test_single_step_run_degrades_gracefully(self, tmp_path):
        log = write_log(tmp_path / "run.jsonl", n_steps=1)
        out = tmp_path / "dash.html"
        write_html_dashboard(log, out)
        html = out.read_text()
        # one point cannot make a line: cards say so instead of breaking
        assert "not enough data" in html

    def test_empty_log_raises(self, tmp_path):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        with pytest.raises(ValueError):
            write_html_dashboard(log, tmp_path / "dash.html")


def _read(log):
    from repro.telemetry import read_run_log

    return read_run_log(log)


class TestTimelineSection:
    def write_distributed_log(self, path):
        from repro.telemetry.timeline import analyze_timeline

        events = []
        for rnd in range(2):
            for rank in range(2):
                t = rnd * 1.0
                for phase, dur in (("pack", 0.01), ("post", 0.002),
                                   ("interior", 0.5 + 0.1 * rank),
                                   ("wait", 0.1), ("cut", 0.05),
                                   ("accumulate", 0.01)):
                    events.append({"rank": rank, "round": rnd,
                                   "phase": phase, "peer": -1,
                                   "t0": t, "t1": t + dur})
                    t += dur
        analysis = analyze_timeline(events)
        with RunLogWriter(path, meta={"command": "lung"}) as w:
            for i in range(2):
                w.write_step(make_stats(i))
            w.write_summary(extra={"timeline": analysis})
        return path

    def test_distributed_summary_renders_timeline_section(self, tmp_path):
        log = self.write_distributed_log(tmp_path / "run.jsonl")
        header, steps, summary = _read(log)
        html = render_html_dashboard(header, steps, summary)
        assert "Distributed timeline" in html
        assert "Wait fraction" in html
        assert "Overlap efficiency" in html or "overlap" in html.lower()

    def test_serial_log_has_no_timeline_section(self, tmp_path):
        log = write_log(tmp_path / "run.jsonl")
        header, steps, summary = _read(log)
        html = render_html_dashboard(header, steps, summary)
        assert "Distributed timeline" not in html


class TestDashboardNumbers:
    def test_tiles_reflect_the_log(self, tmp_path):
        log = write_log(tmp_path / "run.jsonl", n_steps=4)
        header, steps, summary = _read(log)
        html = render_html_dashboard(header, steps, summary)
        assert ">4<" in html  # steps tile
        assert f"{steps[-1]['t']:.3g}" in html or "0.04" in html
