"""Integration tests: the instrumented solve stack reports into the
global tracer, and stays silent (and cheap) when it is disabled."""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import DGLaplaceOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.generators import box
from repro.mesh.mapping import GeometryField
from repro.mesh.octree import Forest
from repro.solvers import HybridMultigridPreconditioner, conjugate_gradient
from repro.telemetry import TRACER


@pytest.fixture
def tracing():
    """Enable the global tracer for one test, always restoring it."""
    TRACER.reset()
    TRACER.enable()
    yield TRACER
    TRACER.disable()
    TRACER.reset()


def small_poisson(degree=2, refinements=1):
    mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
    forest = Forest(mesh).refine_all(refinements)
    geo = GeometryField(forest, degree)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, degree)
    op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
    b = op.assemble_rhs(f=lambda x, y, z: np.ones_like(x),
                        dirichlet=lambda x, y, z: 0.0 * x)
    return op, b


class TestInstrumentedSolve:
    def test_cg_multigrid_solve_populates_tracer(self, tracing):
        op, b = small_poisson()
        mg = HybridMultigridPreconditioner(op)
        tracing.reset()  # drop setup-time spans (Lanczos etc.)
        res = conjugate_gradient(op, b, mg, tol=1e-10, name="poisson")
        assert res.converged
        # spans: cg[poisson] > mg_vcycle > per-level + amg_coarse
        cg_node = tracing.find("cg[poisson]")
        assert cg_node is not None and cg_node.count == 1
        mg_node = tracing.find("cg[poisson]", "mg_vcycle")
        assert mg_node is not None
        # one V-cycle per CG iteration (initial z + one per iteration)
        assert mg_node.count >= res.n_iterations
        assert "amg_coarse" in mg_node.children
        # counters
        c = tracing.counters
        assert c["cg[poisson].solves"] == 1
        assert c["cg[poisson].iterations"] == res.n_iterations
        assert c["mg.vcycles"] == mg_node.count
        assert c["vmult.DGLaplaceOperator"] >= res.n_iterations
        assert c["chebyshev.applications"] > 0
        # gauges
        assert tracing.gauges["cg[poisson].last_relative_residual"] <= 1e-10

    def test_disabled_tracer_records_nothing_during_solve(self):
        assert not TRACER.enabled
        TRACER.reset()
        op, b = small_poisson()
        mg = HybridMultigridPreconditioner(op)
        res = conjugate_gradient(op, b, mg, tol=1e-8, name="poisson")
        assert res.converged
        assert TRACER.root.children == {}
        assert TRACER.counters == {}
        assert TRACER.gauges == {}

    def test_dual_splitting_substep_spans(self, tracing):
        """One Navier-Stokes step emits the per-sub-step spans and a
        consistent StepStatistics record."""
        from repro.ns.bc import BoundaryConditions
        from repro.ns.solver import IncompressibleNavierStokesSolver, SolverSettings

        mesh = box(subdivisions=(1, 1, 1), boundary_ids={i: 1 for i in range(6)})
        forest = Forest(mesh).refine_all(1)
        solver = IncompressibleNavierStokesSolver(
            forest, 2, 1e-2, BoundaryConditions({}),
            SolverSettings(solver_tolerance=1e-3, use_multigrid=False,
                           dt_max=1e-3),
        )
        solver.initialize()
        tracing.reset()
        st = solver.step()
        step_node = tracing.find("step")
        assert step_node is not None and step_node.count == 1
        for name in ("convective", "pressure_poisson", "projection",
                     "helmholtz", "penalty", "convective_eval"):
            assert name in step_node.children, name
            assert st.substep_seconds[name] == pytest.approx(
                step_node.children[name].total
            )
        # sub-step spans account for (nearly) the whole step wall time
        assert sum(st.substep_seconds.values()) >= 0.9 * st.wall_time
        assert st.wall_time >= step_node.total * 0.9
        assert st.cfl >= 0.0  # stamped by the solver (0 at rest)
