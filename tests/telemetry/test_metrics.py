"""Tests of the solver-health metric registry, exporters, and the
cross-process aggregator."""

import json
import math

import pytest

from repro.telemetry.metrics import (
    METRICS,
    NULL_METRIC,
    MetricRegistry,
    MetricsWriter,
    doc_to_prometheus,
    export_metrics,
    load_metrics,
    merge_snapshots,
    parse_prometheus,
    snapshot_doc,
    to_prometheus,
    write_prometheus,
    write_snapshot,
)


def make_registry(enabled=True):
    reg = MetricRegistry(enabled=enabled)
    reg.counter("repro_solves_total", "total solves").inc(3)
    reg.gauge("repro_residual", "last residual").set(1.5e-7)
    h = reg.histogram("repro_iters", "iterations", buckets=(1, 5, 10))
    for v in (0.5, 3, 3, 7, 42):
        h.observe(v)
    fam = reg.counter("repro_failures_total", "failures",
                      labels=("solve", "reason"))
    fam.labels(("pressure", "none")).inc(2)
    fam.labels(("viscous", "max_iterations")).inc()
    return reg


class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricRegistry(enabled=True)
        c = reg.counter("c_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1)

    def test_gauge_last_write_and_unset(self):
        reg = MetricRegistry(enabled=True)
        g = reg.gauge("g")
        assert g._samples(()) == []  # unset: no sample exported
        g.set(1.0)
        g.set(2.5)
        assert g.value == 2.5

    def test_histogram_le_semantics(self):
        """Bucket i counts observations <= edges[i] (Prometheus le)."""
        reg = MetricRegistry(enabled=True)
        h = reg.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        assert h.counts == [2, 2, 1]  # <=1, <=10, +Inf
        assert h.count == 5 and h.sum == pytest.approx(27.5)

    def test_histogram_drops_nan(self):
        reg = MetricRegistry(enabled=True)
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(float("nan"))
        assert h.count == 0

    def test_histogram_rejects_bad_edges(self):
        reg = MetricRegistry(enabled=True)
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            reg.histogram("h2", buckets=())

    def test_registration_idempotent_and_conflicts_raise(self):
        reg = MetricRegistry()
        a = reg.counter("x_total", "help")
        assert reg.counter("x_total", "other help") is a  # same handle
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x_total", labels=("k",))

    def test_invalid_names_rejected(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError, match="not a valid Prometheus name"):
            reg.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok_total", labels=("bad-label",))

    def test_family_label_arity_checked(self):
        reg = MetricRegistry(enabled=True)
        fam = reg.counter("f_total", labels=("a", "b"))
        with pytest.raises(ValueError, match="expected 2 label"):
            fam.labels(("only-one",))

    def test_family_single_label_accepts_bare_string(self):
        reg = MetricRegistry(enabled=True)
        fam = reg.counter("f_total", labels=("solve",))
        fam.labels("pressure").inc()
        assert fam.labels(("pressure",)).value == 1

    def test_reset_zeros_values_but_keeps_handles(self):
        reg = make_registry()
        c = reg.get("repro_solves_total")
        reg.reset()
        assert c.value == 0
        assert reg.get("repro_solves_total") is c
        c.inc()
        assert c.value == 1

    def test_catalog_records_source_module(self):
        reg = MetricRegistry()
        reg.counter("c_total", "help text", labels=("k",))
        (row,) = reg.catalog()
        assert row["name"] == "c_total"
        assert row["type"] == "counter"
        assert row["labels"] == ["k"]
        assert "test_metrics" in row["source"]

    def test_global_registry_disabled_by_default(self):
        assert METRICS.enabled is False


class TestDisabledFastPath:
    def test_disabled_records_nothing(self):
        reg = make_registry(enabled=False)
        doc = snapshot_doc(reg)
        for m in doc["metrics"]:
            for s in m["samples"]:
                assert s.get("value", 0) == 0 and s.get("count", 0) == 0
        # labeled families create no children at all while disabled
        assert reg.get("repro_failures_total").children == {}

    def test_disabled_family_returns_shared_null_metric(self):
        reg = MetricRegistry(enabled=False)
        fam = reg.counter("f_total", labels=("k",))
        assert fam.labels(("a",)) is NULL_METRIC
        assert fam.labels(("b",)) is NULL_METRIC

    def test_disabled_path_is_allocation_free(self):
        """Acceptance: the disabled-metrics path must not allocate per
        call — the tracemalloc peak of the hot loop may not grow with
        the call count (same discipline as the tracer's NULL_SPAN)."""
        import tracemalloc

        reg = MetricRegistry(enabled=False)
        counter = reg.counter("hot_total")
        gauge = reg.gauge("hot_gauge")
        hist = reg.histogram("hot_hist", buckets=(1.0, 10.0))
        family = reg.counter("hot_fam_total", labels=("solve", "reason"))

        def hot_loop(n):
            for _ in range(n):
                counter.inc()
                gauge.set(1e-9)
                hist.observe(3.0)
                family.labels(("pressure", "none")).inc()

        def peak(n):
            hot_loop(n)  # warm up bytecode caches and method binding
            tracemalloc.start()
            try:
                hot_loop(n)
                _, p = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return p

        small, large = peak(100), peak(10_000)
        assert large <= small + 64, (
            f"disabled metrics allocate per call: peak {small} B at 100 "
            f"calls vs {large} B at 10000 calls"
        )
        assert reg.get("hot_total").value == 0
        assert reg.get("hot_hist").count == 0


class TestPrometheus:
    def test_text_format_structure(self):
        text = to_prometheus(make_registry())
        assert "# HELP repro_solves_total total solves" in text
        assert "# TYPE repro_solves_total counter" in text
        assert "repro_solves_total 3" in text
        assert "repro_residual 1.5e-07" in text
        assert 'repro_iters_bucket{le="1"} 1' in text
        assert 'repro_iters_bucket{le="5"} 3' in text
        assert 'repro_iters_bucket{le="10"} 4' in text
        assert 'repro_iters_bucket{le="+Inf"} 5' in text
        assert "repro_iters_sum 55.5" in text
        assert "repro_iters_count 5" in text
        assert ('repro_failures_total{solve="pressure",reason="none"} 2'
                in text)

    def test_label_values_escaped(self):
        reg = MetricRegistry(enabled=True)
        fam = reg.gauge("g", labels=("level",))
        fam.labels(('DG(k=3) "fine"\nx\\y',)).set(1.0)
        text = to_prometheus(reg)
        assert '\\"fine\\"' in text and "\\n" in text and "\\\\y" in text
        doc = parse_prometheus(text)
        assert doc["metrics"][0]["samples"][0]["labels"] == [
            'DG(k=3) "fine"\nx\\y'
        ]

    def _doc_by_name(self, doc):
        out = {}
        for m in doc["metrics"]:
            samples = {}
            for s in m["samples"]:
                key = frozenset(zip(m["labels"], s["labels"]))
                samples[key] = {k: v for k, v in s.items() if k != "labels"}
            out[m["name"]] = {
                "type": m["type"],
                "help": m["help"],
                "buckets": m.get("buckets"),
                "samples": samples,
            }
        return out

    def test_roundtrip(self, tmp_path):
        """Acceptance: parse_prometheus(write_prometheus(reg)) recovers
        the snapshot document (modulo meta/source and label ordering —
        compared as label-name -> value mappings)."""
        reg = make_registry()
        path = write_prometheus(reg, tmp_path / "m.prom")
        parsed = parse_prometheus(path.read_text())
        assert self._doc_by_name(parsed) == self._doc_by_name(
            snapshot_doc(reg)
        )

    def test_roundtrip_through_exporter_is_stable(self, tmp_path):
        """After one parse normalization (label names come back
        sorted), render -> parse is a fixed point."""
        reg = make_registry()
        doc1 = parse_prometheus(to_prometheus(reg))
        assert parse_prometheus(doc_to_prometheus(doc1)) == doc1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a Prometheus sample"):
            parse_prometheus("this is not a metric line\n")


class TestSnapshotFiles:
    def test_export_suffix_picks_format(self, tmp_path):
        reg = make_registry()
        prom = export_metrics(reg, tmp_path / "m.prom")
        assert "# TYPE" in prom.read_text()
        js = export_metrics(reg, tmp_path / "m.json", meta={"worker": 1})
        doc = json.loads(js.read_text())
        assert doc["schema"] == "repro/metrics/1"
        assert doc["meta"] == {"worker": 1}

    def test_load_single_doc_and_prom(self, tmp_path):
        reg = make_registry()
        js = write_snapshot(reg, tmp_path / "m.json")
        prom = write_prometheus(reg, tmp_path / "m.prom")
        assert load_metrics(js)["metrics"] == snapshot_doc(reg)["metrics"]
        assert load_metrics(prom)["metrics"]  # parsed back through .prom

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"schema": "other/9", "metrics": []}\n')
        with pytest.raises(ValueError, match="unsupported metrics schema"):
            load_metrics(path)

    def test_jsonl_stream_last_snapshot_wins(self, tmp_path):
        reg = MetricRegistry(enabled=True)
        c = reg.counter("c_total")
        path = tmp_path / "m.jsonl"
        with MetricsWriter(path, meta={"worker": 0}) as w:
            c.inc()
            w.write_snapshot(reg, t=0.1)
            c.inc(4)
            w.write_snapshot(reg, t=0.2)
        doc = load_metrics(path)
        assert doc["meta"]["worker"] == 0
        assert doc["metrics"][0]["samples"][0]["value"] == 5

    def test_jsonl_stream_corrupt_line_skipped(self, tmp_path):
        reg = MetricRegistry(enabled=True)
        c = reg.counter("c_total")
        path = tmp_path / "m.jsonl"
        with MetricsWriter(path) as w:
            c.inc()
            w.write_snapshot(reg)
            c.inc()
            w.write_snapshot(reg)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-15]  # mangle the final snapshot
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="corrupt metrics record"):
            doc = load_metrics(path)
        assert doc["metrics"][0]["samples"][0]["value"] == 1  # prior snapshot


class TestMerge:
    def worker(self, solves, residual, iters, failures=()):
        reg = MetricRegistry(enabled=True)
        reg.counter("repro_solves_total").inc(solves)
        reg.gauge("repro_residual").set(residual)
        h = reg.histogram("repro_iters", buckets=(1, 5, 10))
        for v in iters:
            h.observe(v)
        fam = reg.counter("repro_failures_total", labels=("reason",))
        for reason in failures:
            fam.labels((reason,)).inc()
        return snapshot_doc(reg)

    def test_counters_sum_gauges_last_write_buckets_merge(self):
        """Acceptance: the aggregator sums counters per label tuple,
        keeps the last gauge write, and merges histogram buckets
        element-wise."""
        a = self.worker(3, 1e-6, (0.5, 3), failures=("nan", "nan"))
        b = self.worker(4, 2e-8, (7, 42), failures=("max_iterations",))
        doc = merge_snapshots([a, b])
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["repro_solves_total"]["samples"][0]["value"] == 7
        assert by_name["repro_residual"]["samples"][0]["value"] == 2e-8
        h = by_name["repro_iters"]["samples"][0]
        assert h["counts"] == [1, 1, 1, 1]
        assert h["count"] == 4 and h["sum"] == pytest.approx(52.5)
        failures = {
            tuple(s["labels"]): s["value"]
            for s in by_name["repro_failures_total"]["samples"]
        }
        assert failures == {("max_iterations",): 1, ("nan",): 2}
        assert doc["meta"]["aggregated_workers"] == 2

    def test_merge_is_associative(self):
        """Acceptance: (a + b) + c == a + (b + c) — the property that
        makes tree-shaped reductions over many workers legal.  Gauges
        keep document order under both groupings because merge output
        preserves the last-write value."""
        a = self.worker(1, 1.0, (0.5,), failures=("nan",))
        b = self.worker(2, 2.0, (3,))
        c = self.worker(3, 3.0, (7, 42), failures=("nan", "stall"))

        def strip_meta(doc):
            return doc["metrics"]

        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        flat = merge_snapshots([a, b, c])
        assert strip_meta(left) == strip_meta(right) == strip_meta(flat)

    def test_merge_rejects_mismatched_buckets(self):
        reg1 = MetricRegistry(enabled=True)
        reg1.histogram("h", buckets=(1, 2)).observe(1)
        reg2 = MetricRegistry(enabled=True)
        reg2.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError, match="bucket edges differ"):
            merge_snapshots([snapshot_doc(reg1), snapshot_doc(reg2)])

    def test_merge_rejects_conflicting_types(self):
        reg1 = MetricRegistry(enabled=True)
        reg1.counter("x").inc()
        reg2 = MetricRegistry(enabled=True)
        reg2.gauge("x").set(1)
        with pytest.raises(ValueError, match="conflicting type"):
            merge_snapshots([snapshot_doc(reg1), snapshot_doc(reg2)])

    def test_merged_doc_survives_prometheus_roundtrip(self):
        a = self.worker(3, 1e-6, (0.5, 3))
        b = self.worker(4, 2e-8, (7,))
        doc = merge_snapshots([a, b])
        parsed = parse_prometheus(doc_to_prometheus(doc))
        assert parse_prometheus(doc_to_prometheus(parsed)) == parsed


class TestDefaultBuckets:
    def test_reduction_buckets_cover_unit_interval(self):
        from repro.telemetry.metrics import REDUCTION_BUCKETS

        assert REDUCTION_BUCKETS[0] <= 1e-4
        assert REDUCTION_BUCKETS[-1] == 1.0
        assert list(REDUCTION_BUCKETS) == sorted(REDUCTION_BUCKETS)

    def test_iteration_buckets_are_increasing(self):
        from repro.telemetry.metrics import ITERATION_BUCKETS

        assert list(ITERATION_BUCKETS) == sorted(ITERATION_BUCKETS)
        assert not math.isinf(ITERATION_BUCKETS[-1])
