"""Tests of ``repro monitor``: live tailing of a JSONL run log."""

import io

import pytest

from repro.telemetry import RunLogWriter, Tracer, monitor_file, monitor_once
from repro.timeint.dual_splitting import StepStatistics


def make_stats(i, wall=0.2):
    return StepStatistics(
        dt=0.001,
        t=0.001 * (i + 1),
        pressure_iterations=4,
        viscous_iterations=2,
        penalty_iterations=9,
        cfl=0.35,
        wall_time=wall,
        substep_seconds={"pressure_poisson": 0.1 * wall / 0.2},
    )


def write_log(path, n_steps=4, planned=10, summary=False, counters=None):
    w = RunLogWriter(path, meta={"command": "lung", "steps": planned})
    for i in range(n_steps):
        w.write_step(make_stats(i), extra={"recovery_events": i})
    if summary:
        tr = Tracer(enabled=True)
        for name, v in (counters or {}).items():
            tr.incr(name, v)
        w.write_summary(tr)
    w.close()
    return path


class TestMonitorOnce:
    def test_running_log(self, tmp_path):
        path = write_log(tmp_path / "run.jsonl")
        text, finished = monitor_once(path)
        assert not finished
        assert "steps: 4/10 (40%)" in text
        assert "sim t=0.004" in text
        assert "dt=1.000e-03" in text
        assert "step rate: 5 steps/s" in text
        assert "ETA: 1.2 s (6 steps left)" in text
        assert "CFL: 0.350" in text
        assert "pressure 4.0" in text
        assert "recovery events so far: 3" in text
        assert "status: running" in text

    def test_finished_log_shows_robustness(self, tmp_path):
        path = write_log(tmp_path / "run.jsonl", summary=True,
                         counters={"recovery.step_retries": 2,
                                   "checkpoint.writes": 1})
        text, finished = monitor_once(path)
        assert finished
        assert "status: finished" in text
        assert "robustness:" in text
        assert "step retries: 2" in text

    def test_worker_phase_breakdown(self, tmp_path):
        # distributed runs attach cumulative per-rank phase seconds to
        # every step record; the monitor renders the latest breakdown
        path = tmp_path / "run.jsonl"
        w = RunLogWriter(path, meta={"command": "lung", "steps": 4})
        phases = {
            "0": {"pack": 0.01, "post": 0.001, "interior": 0.6,
                  "wait": 0.2, "cut": 0.15, "accumulate": 0.039},
            "1": {"pack": 0.02, "post": 0.001, "interior": 0.5,
                  "wait": 0.3, "cut": 0.14, "accumulate": 0.039},
        }
        w.write_step(make_stats(0), extra={"worker_phases": phases})
        w.close()
        text, _ = monitor_once(path)
        assert "worker phases (% of per-rank round time):" in text
        assert "rank 0:" in text and "rank 1:" in text
        assert "interior 60.0%" in text and "wait 20.0%" in text

    def test_serial_log_has_no_worker_section(self, tmp_path):
        path = write_log(tmp_path / "run.jsonl")
        text, _ = monitor_once(path)
        assert "worker phases" not in text

    def test_headerless_steps_waiting(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunLogWriter(path, meta={"command": "lung"}).close()
        text, finished = monitor_once(path)
        assert not finished
        assert "no step records yet" in text
        assert "waiting for first step" in text

    def test_no_planned_steps_no_eta(self, tmp_path):
        path = tmp_path / "run.jsonl"
        w = RunLogWriter(path, meta={"command": "lung"})
        w.write_step(make_stats(0))
        w.close()
        text, _ = monitor_once(path)
        assert "steps: 1\n" in text or "steps: 1 " in text
        assert "ETA" not in text

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = write_log(tmp_path / "run.jsonl")
        path.write_bytes(path.read_bytes()[:-30])
        with pytest.warns(RuntimeWarning):
            text, finished = monitor_once(path)
        assert "steps: 3/10" in text  # last step dropped, rest intact
        assert not finished


class TestMonitorFile:
    def test_single_shot(self, tmp_path):
        path = write_log(tmp_path / "run.jsonl", summary=True)
        out = io.StringIO()
        assert monitor_file(path, stream=out) == 0
        assert "status: finished" in out.getvalue()

    def test_follow_stops_on_summary(self, tmp_path):
        path = write_log(tmp_path / "run.jsonl", summary=True)
        out = io.StringIO()
        assert monitor_file(path, follow=True, interval=0.0, stream=out) == 0
        assert out.getvalue().count("status: finished") == 1

    def test_follow_respects_max_polls(self, tmp_path):
        path = write_log(tmp_path / "run.jsonl")  # never finishes
        out = io.StringIO()
        assert monitor_file(path, follow=True, interval=0.0, stream=out,
                            max_polls=3) == 0
        assert out.getvalue().count("status: running") == 3

    def test_missing_file_is_an_error(self, tmp_path):
        out = io.StringIO()
        assert monitor_file(tmp_path / "nope.jsonl", stream=out) == 1
        assert "error:" in out.getvalue()

    def test_corrupt_log_is_an_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "schema": "other/9"}\n')
        out = io.StringIO()
        assert monitor_file(path, stream=out) == 1
        assert "unsupported run-log schema" in out.getvalue()

class TestFollowInterrupt:
    def test_ctrl_c_prints_final_status_and_exits_cleanly(
            self, tmp_path, monkeypatch):
        """Ctrl-C during --follow is a normal way to stop watching: the
        monitor prints one final status block and exits 0."""
        import repro.telemetry.monitor as mon

        def interrupt(_):
            raise KeyboardInterrupt

        monkeypatch.setattr(mon.time, "sleep", interrupt)
        path = write_log(tmp_path / "run.jsonl")  # running, never finishes
        out = io.StringIO()
        assert monitor_file(path, follow=True, interval=5.0, stream=out) == 0
        text = out.getvalue()
        assert "interrupted -- final status:" in text
        # the final summary block repeats the status line after the interrupt
        assert text.count("status: running") >= 2
