"""Tests of the JSONL run-log sink and the report aggregation."""

import json

import pytest

from repro.telemetry import (
    SCHEMA,
    RunLogWriter,
    Tracer,
    aggregate_steps,
    read_run_log,
    render_breakdown,
    render_counters,
    render_span_tree,
    step_record,
)
from repro.timeint.dual_splitting import StepStatistics


def make_stats(i, wall=0.1):
    return StepStatistics(
        dt=0.01,
        t=0.01 * (i + 1),
        pressure_iterations=3 + i,
        viscous_iterations=2,
        penalty_iterations=5,
        cfl=0.4,
        wall_time=wall,
        substep_seconds={
            "convective": 0.01 * wall / 0.1,
            "pressure_poisson": 0.06 * wall / 0.1,
            "projection": 0.005 * wall / 0.1,
            "helmholtz": 0.015 * wall / 0.1,
            "penalty": 0.01 * wall / 0.1,
        },
    )


class TestRunLog:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tr = Tracer(enabled=True)
        with tr.span("step"):
            tr.incr("vmult.Op", 7)
        with RunLogWriter(path, meta={"command": "test", "n_dofs": 42}) as w:
            for i in range(3):
                w.write_step(make_stats(i), extra={"inflow_m3_s": 0.1 * i})
            w.write_summary(tr)
        header, steps, summary = read_run_log(path)
        assert header["schema"] == SCHEMA
        assert header["n_dofs"] == 42
        assert len(steps) == 3
        assert steps[0]["step"] == 0 and steps[2]["step"] == 2
        assert steps[1]["iterations"]["pressure"] == 4
        assert steps[1]["substeps_s"]["pressure_poisson"] == pytest.approx(0.06)
        assert steps[2]["inflow_m3_s"] == pytest.approx(0.2)
        assert summary["n_steps"] == 3
        assert summary["counters"]["vmult.Op"] == 7
        assert summary["spans"]["step"]["count"] == 1

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as w:
            w.write_step(make_stats(0))
            w.write_summary()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + step + summary
        for line in lines:
            json.loads(line)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "schema": "other/9"}\n')
        with pytest.raises(ValueError, match="unsupported run-log schema"):
            read_run_log(path)

    def test_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "step", "step": 0}\n')
        with pytest.raises(ValueError, match="no .* header"):
            read_run_log(path)

    def test_truncated_log_has_no_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        w = RunLogWriter(path)
        w.write_step(make_stats(0))
        w.close()  # crashed run: no summary record
        _, steps, summary = read_run_log(path)
        assert len(steps) == 1 and summary is None

    def test_write_after_close_raises(self, tmp_path):
        w = RunLogWriter(tmp_path / "run.jsonl")
        w.close()
        with pytest.raises(ValueError, match="closed"):
            w.write_step(make_stats(0))

    @pytest.mark.parametrize("cut", [2, 5, 20])
    def test_truncated_final_line_is_skipped_with_warning(self, tmp_path, cut):
        """A run killed mid-write leaves a partial last line; the reader
        must warn and skip it, not raise — byte-wise truncation."""
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path, meta={"command": "test"}) as w:
            for i in range(3):
                w.write_step(make_stats(i))
        data = path.read_bytes()
        assert data.endswith(b"\n")
        path.write_bytes(data[:-cut])  # cut into the final record
        with pytest.warns(RuntimeWarning, match="truncated final record"):
            header, steps, summary = read_run_log(path)
        assert header["command"] == "test"
        assert len(steps) == 2  # the mangled third step is dropped
        assert summary is None

    def test_truncation_of_trailing_newline_only_is_harmless(self, tmp_path):
        """Cutting exactly the newline leaves a complete JSON line."""
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as w:
            w.write_step(make_stats(0))
        path.write_bytes(path.read_bytes()[:-1])
        _, steps, _ = read_run_log(path)  # no warning expected
        assert len(steps) == 1

    def test_midfile_corruption_still_raises(self, tmp_path):
        """Only the *final* line gets truncation forgiveness; a mangled
        line followed by valid records is corruption."""
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as w:
            w.write_step(make_stats(0))
            w.write_step(make_stats(1))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-10]  # mangle the first step record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_run_log(path)


class TestAggregation:
    def test_aggregates_dicts_and_stats_identically(self, tmp_path):
        stats = [make_stats(i) for i in range(4)]
        recs = [step_record(s, i) for i, s in enumerate(stats)]
        for agg in (aggregate_steps(stats), aggregate_steps(recs)):
            assert agg.n_steps == 4
            assert agg.t_end == pytest.approx(0.04)
            assert agg.mean_dt == pytest.approx(0.01)
            assert agg.mean_cfl == pytest.approx(0.4)
            assert agg.total_wall_s == pytest.approx(0.4)
            assert agg.wall_per_step_s == pytest.approx(0.1)
            assert agg.substep_totals_s["pressure_poisson"] == pytest.approx(0.24)
            # pressure iterations: 3, 4, 5, 6 -> mean 4.5
            assert agg.mean_iterations["pressure"] == pytest.approx(4.5)

    def test_breakdown_shares_sum_to_one(self):
        agg = aggregate_steps([make_stats(i) for i in range(3)])
        text = render_breakdown(agg)
        assert "pressure_poisson" in text and "total step" in text
        assert "iters/solve" in text
        # sub-step seconds of make_stats sum to 0.1 == wall -> fully accounted
        accounted = sum(agg.substep_totals_s.values()) / agg.total_wall_s
        assert accounted == pytest.approx(1.0)

    def test_empty_aggregate(self):
        agg = aggregate_steps([])
        assert agg.n_steps == 0 and agg.wall_per_step_s == 0.0
        assert "total step" in render_breakdown(agg)


class TestRenderers:
    def test_span_tree_render(self):
        tr = Tracer(enabled=True)
        with tr.span("step"):
            with tr.span("pressure_poisson"):
                pass
        out = render_span_tree(tr)
        assert "step" in out
        assert "  pressure_poisson" in out  # indented child
        assert "calls" in out

    def test_counter_render(self):
        tr = Tracer(enabled=True)
        tr.incr("vmult.Op", 3)
        tr.gauge("res", 1e-8)
        out = render_counters(tr)
        assert "vmult.Op" in out and "3" in out
        assert "res" in out
        assert render_counters(Tracer(enabled=True)) == ""


class TestRobustnessRender:
    def test_full_counter_set(self):
        from repro.telemetry import render_robustness

        out = render_robustness({
            "recovery.step_retries": 3,
            "recovery.step_failures": 1,
            "recovery.reasons.solver_divergence": 2,
            "recovery.reasons.nan_detected": 1,
            "fallback.pressure.tier.mg_mixed": 40,
            "fallback.pressure.tier.direct": 2,
            "fallback.pressure.escalations": 2,
            "fallback.pressure.exhausted": 0,
            "checkpoint.writes": 5,
            "checkpoint.loads": 1,
            "vmult.Op": 999,  # unrelated counters are ignored
        })
        assert out.startswith("robustness:")
        assert "step retries: 3" in out and "step failures: 1" in out
        assert "retry reason solver_divergence: 2" in out
        assert "retry reason nan_detected: 1" in out
        assert "fallback[pressure]: escalations=2 exhausted=0" in out
        assert "direct=2" in out and "mg_mixed=40" in out
        assert "5 written, 1 loaded" in out
        assert "vmult.Op" not in out

    def test_empty_when_nothing_recorded(self):
        from repro.telemetry import render_robustness

        assert render_robustness({}) == ""
        assert render_robustness({"vmult.Op": 7, "cg.iterations": 12}) == ""

    def test_partial_counters(self):
        from repro.telemetry import render_robustness

        out = render_robustness({"checkpoint.writes": 2})
        assert "checkpoints: 2 written, 0 loaded" in out
        out = render_robustness({"fallback.pressure.escalations": 1})
        assert "fallback[pressure]" in out and "tiers: none recorded" in out


class TestOnCorruptWarn:
    def _corrupt_log(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as w:
            for i in range(3):
                w.write_step(make_stats(i))
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-10]  # mangle the SECOND step (mid-file)
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_warn_mode_skips_midfile_corruption(self, tmp_path):
        """Post-mortem mode: a log damaged mid-file (disk full, partial
        flush) can still be read for what survives."""
        path = self._corrupt_log(tmp_path)
        with pytest.warns(RuntimeWarning, match="skipping corrupt record"):
            header, steps, summary = read_run_log(path, on_corrupt="warn")
        assert header is not None
        assert [s["step"] for s in steps] == [0, 2]
        assert summary is None

    def test_default_mode_still_raises(self, tmp_path):
        path = self._corrupt_log(tmp_path)
        with pytest.raises(ValueError, match="not valid JSON"):
            read_run_log(path)

    def test_invalid_mode_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogWriter(path) as w:
            w.write_step(make_stats(0))
        with pytest.raises(ValueError, match="on_corrupt"):
            read_run_log(path, on_corrupt="ignore")
