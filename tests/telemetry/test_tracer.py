"""Tests of the hierarchical span tracer: nesting, timing, counters,
gauges, and the disabled-mode no-op fast path."""

import time

import pytest

from repro.telemetry import NULL_SPAN, TRACER, Tracer


class TestSpans:
    def test_nested_span_timing(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            time.sleep(0.02)
            with tr.span("inner"):
                time.sleep(0.03)
        outer = tr.find("outer")
        inner = tr.find("outer", "inner")
        assert outer is not None and inner is not None
        assert outer.count == 1 and inner.count == 1
        assert inner.total >= 0.03
        assert outer.total >= inner.total + 0.02
        # exclusive = inclusive minus children
        assert outer.exclusive == pytest.approx(outer.total - inner.total)
        assert outer.exclusive >= 0.02
        assert inner.exclusive == inner.total

    def test_repeated_spans_accumulate(self):
        tr = Tracer(enabled=True)
        for _ in range(5):
            with tr.span("a"):
                with tr.span("b"):
                    pass
        assert tr.find("a").count == 5
        assert tr.find("a", "b").count == 5

    def test_same_name_different_parents_are_distinct(self):
        tr = Tracer(enabled=True)
        with tr.span("p1"):
            with tr.span("x"):
                pass
        with tr.span("p2"):
            with tr.span("x"):
                pass
        assert tr.find("p1", "x").count == 1
        assert tr.find("p2", "x").count == 1
        assert tr.find("x") is None

    def test_span_handle_reports_elapsed(self):
        tr = Tracer(enabled=True)
        with tr.span("s") as sp:
            time.sleep(0.01)
        assert sp.elapsed >= 0.01
        assert tr.find("s").total == pytest.approx(sp.elapsed)

    def test_recursion_nests(self):
        tr = Tracer(enabled=True)

        def rec(depth):
            if depth == 0:
                return
            with tr.span(f"d{depth}"):
                rec(depth - 1)

        rec(3)
        assert tr.find("d3", "d2", "d1") is not None

    def test_walk_and_snapshot(self):
        tr = Tracer(enabled=True)
        with tr.span("a"):
            with tr.span("b"):
                pass
        depths = [d for d, _ in tr.find("a").walk()]
        assert depths == [0, 1]
        snap = tr.snapshot()
        assert "a" in snap["spans"]
        assert "b" in snap["spans"]["a"]["children"]
        assert snap["spans"]["a"]["count"] == 1


class TestCountersGauges:
    def test_counter_accumulation(self):
        tr = Tracer(enabled=True)
        tr.incr("x")
        tr.incr("x", 4)
        tr.incr("y", 2)
        assert tr.counters == {"x": 5, "y": 2}

    def test_gauge_keeps_last_value(self):
        tr = Tracer(enabled=True)
        tr.gauge("g", 1.5)
        tr.gauge("g", 2.5)
        assert tr.gauges["g"] == 2.5

    def test_reset_clears_everything(self):
        tr = Tracer(enabled=True)
        with tr.span("a"):
            tr.incr("c")
            tr.gauge("g", 1.0)
        tr.reset()
        assert tr.root.children == {}
        assert tr.counters == {} and tr.gauges == {}
        assert tr.enabled  # reset keeps the enabled flag


class TestWorkAnnotations:
    def test_annotate_attaches_to_open_span(self):
        tr = Tracer(enabled=True)
        with tr.span("vmult"):
            tr.annotate(flops=100.0, bytes=50.0, dofs=10.0)
        node = tr.find("vmult")
        assert node.has_work
        assert (node.flops, node.bytes, node.dofs) == (100.0, 50.0, 10.0)

    def test_repeat_visits_accumulate_work(self):
        tr = Tracer(enabled=True)
        for _ in range(3):
            with tr.span("vmult"):
                tr.annotate(flops=10.0, bytes=5.0, dofs=1.0)
        node = tr.find("vmult")
        assert node.count == 3
        assert node.flops == 30.0 and node.bytes == 15.0 and node.dofs == 3.0

    def test_own_work_convention(self):
        """A parent's annotation excludes what instrumented children
        annotate; subtree_work recovers the inclusive total."""
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            tr.annotate(flops=5.0)
            with tr.span("inner"):
                tr.annotate(flops=20.0)
        assert tr.find("outer").flops == 5.0
        assert tr.find("outer", "inner").flops == 20.0
        assert tr.find("outer").subtree_work() == (25.0, 0.0, 0.0)

    def test_workless_span_has_no_work(self):
        tr = Tracer(enabled=True)
        with tr.span("idle"):
            pass
        assert not tr.find("idle").has_work

    def test_work_survives_snapshot_roundtrip(self):
        from repro.telemetry import SpanNode

        tr = Tracer(enabled=True)
        with tr.span("a"):
            tr.annotate(flops=1.0, bytes=2.0, dofs=3.0)
            with tr.span("b"):
                pass
        snap = tr.snapshot()
        d = snap["spans"]["a"]
        assert d["work"] == {"flops": 1.0, "bytes": 2.0, "dofs": 3.0}
        assert "work" not in d["children"]["b"]
        node = SpanNode.from_dict("a", d)
        assert node.flops == 1.0 and node.bytes == 2.0 and node.dofs == 3.0
        assert node.subtree_work() == (1.0, 2.0, 3.0)

    def test_annotate_disabled_is_noop(self):
        tr = Tracer(enabled=False)
        with tr.span("a"):
            tr.annotate(flops=1e9, bytes=1e9, dofs=1e6)
        assert tr.root.children == {}


class TestDisabledMode:
    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("a"):
            tr.incr("c")
            tr.gauge("g", 1.0)
        assert tr.root.children == {}
        assert tr.counters == {} and tr.gauges == {}

    def test_disabled_span_is_shared_noop(self):
        tr = Tracer(enabled=False)
        assert tr.span("a") is NULL_SPAN
        assert tr.span("b") is NULL_SPAN
        assert NULL_SPAN.elapsed == 0.0

    def test_disabled_overhead_is_small(self):
        """The no-op fast path must be cheap enough to leave in hot
        paths: well under a microsecond per call on any machine."""
        tr = Tracer(enabled=False)
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tr.span("hot"):
                pass
            tr.incr("hot")
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 20e-6  # generous bound for slow CI machines

    def test_global_tracer_disabled_by_default(self):
        assert TRACER.enabled is False

    def test_disabled_span_and_annotate_allocate_nothing(self):
        """Acceptance: with tracing off, per-call span metadata
        allocation is zero — the allocation peak of the hot loop must
        not grow with the number of calls (the shared ``NULL_SPAN`` and
        early returns build no spans, dicts, or work records)."""
        import tracemalloc

        tr = Tracer(enabled=False)

        def hot_loop(n):
            for _ in range(n):
                with tr.span("kernel"):
                    tr.annotate(flops=1.0, bytes=2.0, dofs=3.0)
                tr.incr("kernel.calls")
                tr.gauge("residual", 1e-9)

        def peak(n):
            hot_loop(n)  # warm up: bytecode caches, method binding
            tracemalloc.start()
            try:
                hot_loop(n)
                _, p = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return p

        small, large = peak(100), peak(10_000)
        # 100x the calls may not move the peak (the +-few-bytes jitter is
        # the boxed loop counter, not the tracer: any real per-call span
        # object would add >= 56 B x 10000 calls here)
        assert large <= small + 64, (
            f"disabled tracer allocates per call: peak {small} B at 100 "
            f"calls vs {large} B at 10000 calls"
        )
        assert large < 1024
        assert tr.root.children == {}
        assert tr.counters == {} and tr.gauges == {}
