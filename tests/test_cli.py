"""Tests of the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_poisson(self, capsys):
        assert main(["poisson", "--refinements", "1", "--degree", "2"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out

    def test_mesh_with_vtk(self, tmp_path, capsys):
        vtk = tmp_path / "tree.vtk"
        assert main(["mesh", "--generations", "2", "--vtk", str(vtk)]) == 0
        assert vtk.exists()
        out = capsys.readouterr().out
        assert "airway tree: 7 airways" in out

    def test_scaling(self, capsys):
        assert main(["scaling", "--dofs", "22e6"]) == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out
        assert "GDoF/s" in out

    def test_lung_short_run(self, capsys):
        assert main(["lung", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "lung g=1" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
