"""Tests of the command-line interface."""

import json
import math

import pytest

from repro.cli import main


class TestCLI:
    def test_poisson(self, capsys):
        assert main(["poisson", "--refinements", "1", "--degree", "2"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out

    def test_mesh_with_vtk(self, tmp_path, capsys):
        vtk = tmp_path / "tree.vtk"
        assert main(["mesh", "--generations", "2", "--vtk", str(vtk)]) == 0
        assert vtk.exists()
        out = capsys.readouterr().out
        assert "airway tree: 7 airways" in out

    def test_scaling(self, capsys):
        assert main(["scaling", "--dofs", "22e6"]) == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out
        assert "GDoF/s" in out

    def test_lung_short_run(self, capsys):
        assert main(["lung", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "lung g=1" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_poisson_json(self, capsys):
        assert main(["poisson", "--refinements", "1", "--degree", "2",
                     "--json"]) == 0
        out = capsys.readouterr().out
        rec = json.loads(out)  # the whole output is one JSON object
        assert rec["command"] == "poisson"
        assert rec["converged"] is True
        assert rec["n_iterations"] == len(rec["residuals"]) - 1
        assert 0.0 < rec["reduction_rate"] < 1.0

    def test_calibrate_json(self, capsys):
        assert main(["calibrate", "--degree", "2", "--json"]) == 0
        rec = json.loads(capsys.readouterr().out)
        assert rec["command"] == "calibrate"
        assert rec["matvec_dofs_per_s_k3"] > 0


class TestTelemetryCLI:
    def test_lung_trace_and_log_file(self, tmp_path, capsys):
        from repro.telemetry import TRACER, read_run_log

        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "3", "--trace",
                     "--log-file", str(log)]) == 0
        out = capsys.readouterr().out
        assert "wall time per time step" in out
        assert "pressure_poisson" in out
        assert "span profile:" in out
        assert "vmult.DGLaplaceOperator" in out
        assert not TRACER.enabled  # the command restores the global state

        header, steps, summary = read_run_log(log)
        assert header["command"] == "lung"
        assert len(steps) == 3  # one schema-valid record per time step
        for rec in steps:
            assert rec["dt"] > 0 and rec["wall_time_s"] > 0
            assert set(rec["iterations"]) == {"pressure", "viscous", "penalty"}
            # sub-step times account for the step wall time (within 10%)
            assert math.fsum(rec["substeps_s"].values()) == pytest.approx(
                rec["wall_time_s"], rel=0.1
            )
        assert summary["n_steps"] == 3
        assert summary["counters"]["cg[pressure].solves"] == 3

    def test_lung_log_file_without_trace(self, tmp_path, capsys):
        from repro.telemetry import read_run_log

        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "2", "--log-file", str(log)]) == 0
        _, steps, _ = read_run_log(log)
        assert len(steps) == 2
        # without --trace the per-sub-step profile is not collected
        assert steps[0]["substeps_s"] == {}
        assert steps[0]["wall_time_s"] > 0

    def test_report_aggregates_run_log(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "3", "--trace",
                     "--log-file", str(log)]) == 0
        capsys.readouterr()
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "wall time per time step (3 steps" in out
        assert "pressure_poisson" in out and "iters/solve" in out
        assert "counters:" in out

    def test_report_synthetic_log(self, tmp_path, capsys):
        from repro.telemetry import SCHEMA

        log = tmp_path / "synthetic.jsonl"
        records = [{"type": "header", "schema": SCHEMA, "command": "x"}]
        for i in range(2):
            records.append({
                "type": "step", "step": i, "t": 0.1 * (i + 1), "dt": 0.1,
                "cfl": 0.5, "wall_time_s": 1.0,
                "iterations": {"pressure": 10, "viscous": 2, "penalty": 4},
                "substeps_s": {"pressure_poisson": 0.6, "helmholtz": 0.4},
            })
        log.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "2 steps" in out
        assert "60.0%" in out  # pressure Poisson share
        assert "10.0" in out  # mean pressure iterations

    def test_report_rejects_empty_log(self, tmp_path, capsys):
        from repro.telemetry import SCHEMA

        log = tmp_path / "empty.jsonl"
        log.write_text(json.dumps({"type": "header", "schema": SCHEMA}) + "\n")
        assert main(["report", str(log)]) == 1


class TestTraceCLI:
    """``repro trace``: offline analysis of a --trace-timeline file."""

    def write_trace(self, path, meta=None):
        from repro.telemetry import write_chrome_trace

        events = []
        for rank in range(2):
            t = 0.0
            for phase, dur in (("pack", 0.01), ("post", 0.002),
                               ("interior", 0.5 + 0.1 * rank),
                               ("wait", 0.2 - 0.1 * rank),
                               ("cut", 0.05), ("accumulate", 0.01)):
                events.append({"rank": rank, "round": 0, "phase": phase,
                               "peer": -1, "t0": t, "t1": t + dur})
                t += dur
        return write_chrome_trace(path, events, meta=meta)

    def test_trace_text_report(self, tmp_path, capsys):
        path = self.write_trace(
            tmp_path / "t.json",
            meta={"rank_exchange_bytes": {"0": {"send": 800, "recv": 800},
                                          "1": {"send": 800, "recv": 800}},
                  "clock_rtts_s": {"0": 3e-5, "1": 2.4e-5}},
        )
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "distributed timeline: 2 ranks, 1 rounds" in out
        assert "clock-offset tolerance: 15.0 us" in out
        assert "overlap efficiency" in out
        assert "ghost_exchange[rank0]" in out  # bandwidth attribution

    def test_trace_json_reproduces_analysis(self, tmp_path, capsys):
        from repro.telemetry import analyze_timeline, load_chrome_trace

        path = self.write_trace(tmp_path / "t.json")
        assert main(["trace", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro/timeline/1"
        events, _ = load_chrome_trace(path)
        # the CLI reproduces the library analysis exactly
        assert doc == json.loads(json.dumps(analyze_timeline(events)))

    def test_trace_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_rejects_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["trace", str(path)]) == 1
        assert "no timeline events" in capsys.readouterr().err

    def test_poisson_trace_requires_workers(self, capsys):
        assert main(["poisson", "--refinements", "1",
                     "--trace-timeline", "/tmp/t.json"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_lung_trace_without_workers_warns(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["lung", "--steps", "1",
                     "--trace-timeline", str(trace)]) == 0
        assert "needs --workers" in capsys.readouterr().err
        assert not trace.exists()


class TestRunConfigCLI:
    def test_lung_config_round_trip(self, tmp_path, capsys):
        """A config written by RunConfig.to_json drives the lung command
        through RunConfig.from_args unchanged."""
        from repro.robustness import RunConfig

        cfg = RunConfig(generations=1, degree=2, seed=7)
        path = tmp_path / "run.json"
        path.write_text(cfg.to_json(indent=2))
        assert main(["lung", "--steps", "1", "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "lung g=1" in out

    def test_lung_config_flag_overrides(self, tmp_path, capsys):
        from repro.robustness import RunConfig

        path = tmp_path / "run.json"
        path.write_text(RunConfig(generations=2, degree=2).to_json())
        assert main(["lung", "--steps", "1", "--config", str(path),
                     "--generations", "1"]) == 0
        assert "lung g=1" in capsys.readouterr().out

    def test_lung_rejects_bad_config(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"no_such_key": 1}))
        assert main(["lung", "--steps", "1", "--config", str(path)]) == 2


class TestEnsembleCLI:
    def test_ensemble_sweep_run(self, capsys):
        assert main(["ensemble", "--steps", "2",
                     "--resistance-scales", "1.0,1.5"]) == 0
        out = capsys.readouterr().out
        assert "2 members" in out
        assert "R-scale" in out  # per-member summary table

    def test_members_flag_replicates_base(self, capsys):
        assert main(["ensemble", "--steps", "1", "--members", "3"]) == 0
        assert "3 members" in capsys.readouterr().out

    def test_mismatched_sweep_lengths_rejected(self, capsys):
        assert main(["ensemble", "--steps", "1", "--members", "2",
                     "--dp-initials", "800,900,1000"]) == 2
        assert "need 1 or 2" in capsys.readouterr().err

    def test_ensemble_log_file(self, tmp_path, capsys):
        from repro.telemetry import read_run_log

        log = tmp_path / "ens.jsonl"
        assert main(["ensemble", "--steps", "2", "--members", "2",
                     "--log-file", str(log)]) == 0
        header, steps, summary = read_run_log(log)
        assert header["command"] == "ensemble"
        assert header["members"] == 2
        assert len(steps) == 2
        assert len(steps[0]["member_cfl"]) == 2


class TestVerifyCLI:
    def test_spatial_ladder_table(self, capsys):
        assert main(["verify", "--ladder", "spatial", "--degrees", "2",
                     "--levels", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "| study | parameter | expected | fitted | status |" in out
        assert "poisson_dg_k2" in out
        assert "pass" in out

    def test_spatial_ladder_json_and_artifacts(self, tmp_path, capsys):
        md = tmp_path / "rates.md"
        log = tmp_path / "rates.jsonl"
        assert main(["verify", "--ladder", "spatial", "--degrees", "2",
                     "--levels", "1,2", "--json",
                     "--markdown", str(md), "--log-file", str(log)]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out.splitlines()[0])
        assert doc["all_passed"] is True
        assert doc["studies"][0]["name"] == "poisson_dg_k2"
        assert doc["studies"][0]["fitted_rate"] > 2.6
        assert "poisson_dg_k2" in md.read_text()
        records = [json.loads(ln) for ln in log.read_text().splitlines()]
        assert records[0]["type"] == "header"
        assert records[-1]["type"] == "summary"
        assert records[-1]["all_passed"] is True

    def test_golden_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["verify", "--golden",
                     str(tmp_path / "nope.json")]) == 2

    @pytest.mark.slow
    def test_golden_update_then_check_round_trip(self, tmp_path, capsys):
        golden = tmp_path / "golden.json"
        assert main(["verify", "--golden", str(golden),
                     "--update-golden"]) == 0
        assert golden.exists()
        capsys.readouterr()
        assert main(["verify", "--golden", str(golden)]) == 0
        assert "golden regression passed" in capsys.readouterr().out

    @pytest.mark.slow
    def test_golden_detects_drift(self, tmp_path, capsys):
        from repro.verification import compute_golden_metrics, write_golden

        metrics = compute_golden_metrics()
        metrics["poisson_k2_l1_error_l2"]["value"] *= 1.5
        golden = tmp_path / "golden.json"
        write_golden(golden, metrics)
        assert main(["verify", "--golden", str(golden)]) == 1
        out = capsys.readouterr().out
        assert "golden regression FAILED" in out
        assert "poisson_k2_l1_error_l2" in out


class TestObservabilityCLI:
    def test_machine_names_match_registry(self):
        """The parser's literal machine list (kept import-light) must
        track the attribution registry."""
        from repro.cli import _MACHINE_NAMES
        from repro.perf.attribution import MACHINES

        assert sorted(_MACHINE_NAMES) == sorted(MACHINES)

    @pytest.mark.slow
    def test_roofline_json_reports_rates_per_kernel(self, capsys):
        """Acceptance: achieved GFlop/s, GB/s, and %-of-model per
        instrumented kernel, covering the DG Laplace vmult and a full
        lung step."""
        assert main(["roofline", "--json", "--refinements", "0",
                     "--repetitions", "2", "--steps", "1"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro/roofline/1"
        assert doc["machine"]["name"]
        kernels = {k["name"]: k for k in doc["kernels"]}
        assert "vmult[DGLaplaceOperator]" in kernels
        for k in kernels.values():
            for field in ("gflops_per_s", "gbytes_per_s", "intensity",
                          "fraction_of_model"):
                assert field in k
        substeps = {s["name"]: s for s in doc["substeps"]}
        step = substeps["step"]  # the full lung time step
        assert step["flops"] > 0 and step["bytes"] > 0
        assert 0.0 < step["fraction_of_model"] < 1.0
        lap = kernels["vmult[DGLaplaceOperator]"]
        assert lap["gflops_per_s"] > 0
        assert lap["calls"] >= 2

    @pytest.mark.slow
    def test_roofline_from_traced_log(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "2", "--trace",
                     "--log-file", str(log)]) == 0
        capsys.readouterr()
        assert main(["roofline", "--from-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "roofline attribution" in out
        assert "vmult[DGLaplaceOperator]" in out
        assert "%model" in out

    def test_roofline_from_untraced_log_fails(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "1", "--log-file", str(log)]) == 0
        capsys.readouterr()
        assert main(["roofline", "--from-log", str(log)]) == 1
        assert "no traced summary" in capsys.readouterr().err

    @pytest.mark.slow
    def test_report_includes_roofline_and_robustness(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "2", "--trace",
                     "--log-file", str(log)]) == 0
        capsys.readouterr()
        assert main(["report", str(log), "--machine", "supermuc-ng"]) == 0
        out = capsys.readouterr().out
        assert "roofline attribution" in out
        assert "vmult[DGLaplaceOperator]" in out
        assert "robustness:" in out

    def test_bench_list_suites(self, capsys):
        assert main(["bench", "--list-suites"]) == 0
        out = capsys.readouterr().out.split()
        assert "ops" in out and "vmult" in out

    @pytest.mark.slow
    def test_bench_smoke_writes_document_and_compares(self, tmp_path, capsys):
        out_json = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--degree", "2",
                     "--cases", "dg_laplace_vmult",
                     "--output", str(out_json)]) == 0
        text = capsys.readouterr().out
        assert "benchmark document written" in text
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro/bench/2"
        assert doc["fingerprint"]["git_sha"]
        assert doc["cases"][0]["throughput"] > 0

        # identical baseline passes
        assert main(["bench", "--input", str(out_json),
                     "--compare", str(out_json)]) == 0
        capsys.readouterr()

        # artificially inflated baseline must fail the gate ...
        inflated = json.loads(out_json.read_text())
        for c in inflated["cases"]:
            c["throughput"] *= 10.0
        base = tmp_path / "inflated.json"
        base.write_text(json.dumps(inflated))
        assert main(["bench", "--input", str(out_json),
                     "--compare", str(base)]) == 1
        assert "FAIL" in capsys.readouterr().out
        # ... unless --warn-only downgrades it for shared CI runners
        assert main(["bench", "--input", str(out_json),
                     "--compare", str(base), "--warn-only"]) == 0
        assert "warning" in capsys.readouterr().out

    def test_bench_unknown_suite_is_usage_error(self, capsys):
        assert main(["bench", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_bench_missing_baseline_is_usage_error(self, tmp_path, capsys):
        doc = {"schema": "repro/bench/2", "suite": "ops", "cases": []}
        p = tmp_path / "doc.json"
        p.write_text(json.dumps(doc))
        assert main(["bench", "--input", str(p),
                     "--compare", str(tmp_path / "nope.json")]) == 2

    def test_monitor_running_and_finished(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "2", "--log-file", str(log)]) == 0
        capsys.readouterr()
        assert main(["monitor", str(log)]) == 0
        out = capsys.readouterr().out
        assert "steps: 2/2" in out
        assert "step rate" in out
        assert "status: finished" in out

    def test_monitor_missing_file(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().out


class TestMetricsCLI:
    def test_lung_metrics_file_round_trips(self, tmp_path, capsys):
        """Acceptance: ``repro lung --metrics-file out.prom`` produces a
        Prometheus exposition the bundled parser validates."""
        from repro.telemetry import METRICS
        from repro.telemetry.metrics import parse_prometheus

        prom = tmp_path / "out.prom"
        assert main(["lung", "--steps", "2",
                     "--metrics-file", str(prom)]) == 0
        assert "metrics written to" in capsys.readouterr().out
        doc = parse_prometheus(prom.read_text())
        names = {m["name"] for m in doc["metrics"]}
        assert "repro_steps_total" in names
        assert "repro_cg_solves_total" in names
        assert "repro_cfl_realized" in names
        assert "repro_windkessel_flow_m3_per_s" in names
        by_name = {m["name"]: m for m in doc["metrics"]}
        steps = by_name["repro_steps_total"]["samples"][0]["value"]
        assert steps == 2
        # every cg solve carries an outcome label
        reasons = by_name["repro_cg_failure_reason_total"]["samples"]
        solves = by_name["repro_cg_solves_total"]["samples"]
        assert sum(s["value"] for s in reasons) == sum(
            s["value"] for s in solves)
        # the session left the global registry off for the next command
        assert not METRICS.enabled

    def test_metrics_aggregate_and_render(self, tmp_path, capsys):
        """Acceptance: merge per-worker snapshots, then render a table."""
        from repro.telemetry import METRICS
        from repro.telemetry.metrics import export_metrics

        METRICS.reset()
        METRICS.enable()
        try:
            METRICS.counter("repro_demo_total", "demo").inc(3)
            export_metrics(METRICS, tmp_path / "w1.json")
            METRICS.counter("repro_demo_total", "demo").inc(2)
            export_metrics(METRICS, tmp_path / "w2.json")
        finally:
            METRICS.disable()
            METRICS.reset()
        merged = tmp_path / "merged.json"
        assert main(["metrics", "aggregate", str(tmp_path / "w1.json"),
                     str(tmp_path / "w2.json"), "--output",
                     str(merged)]) == 0
        capsys.readouterr()
        doc = json.loads(merged.read_text())
        demo = [m for m in doc["metrics"] if m["name"] == "repro_demo_total"]
        assert demo[0]["samples"][0]["value"] == 3 + 5
        assert doc["meta"]["aggregated_workers"] == 2
        assert main(["metrics", "render", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "repro_demo_total" in out

    def test_metrics_export_to_prometheus(self, tmp_path, capsys):
        from repro.telemetry import METRICS
        from repro.telemetry.metrics import export_metrics

        METRICS.reset()
        METRICS.enable()
        try:
            METRICS.gauge("repro_demo", "demo").set(1.5)
            export_metrics(METRICS, tmp_path / "w.json")
        finally:
            METRICS.disable()
            METRICS.reset()
        prom = tmp_path / "w.prom"
        assert main(["metrics", "export", str(tmp_path / "w.json"),
                     "--output", str(prom)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_demo gauge" in text
        assert "repro_demo 1.5" in text

    def test_metrics_rejects_missing_file(self, tmp_path, capsys):
        assert main(["metrics", "render", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_report_html_dashboard(self, tmp_path, capsys):
        """Acceptance: ``repro report --html`` writes one self-contained
        HTML file next to the log."""
        log = tmp_path / "run.jsonl"
        prom = tmp_path / "run.prom"
        assert main(["lung", "--steps", "2", "--log-file", str(log),
                     "--metrics-file", str(prom)]) == 0
        out_html = tmp_path / "dash.html"
        assert main(["report", "--html", str(log), "--output",
                     str(out_html), "--metrics", str(prom)]) == 0
        assert "dashboard written to" in capsys.readouterr().out
        html = out_html.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "repro_cg_solves_total" in html  # catalog from the .prom

    def test_report_html_default_output_path(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["lung", "--steps", "2", "--log-file", str(log)]) == 0
        assert main(["report", "--html", str(log)]) == 0
        capsys.readouterr()
        assert (tmp_path / "run.jsonl.html").exists()
