"""Tests of BDF/extrapolation coefficients and the CFL controller."""

import numpy as np
import pytest

from repro.timeint.bdf import bdf_coefficients, constant_step_coefficients
from repro.timeint.cfl import CFLController


class TestBDFCoefficients:
    def test_bdf1_constant(self):
        c = constant_step_coefficients(1)
        assert np.isclose(c.gamma0, 1.0)
        assert np.allclose(c.alpha, [1.0])
        assert np.allclose(c.beta, [1.0])

    def test_bdf2_constant(self):
        c = constant_step_coefficients(2)
        assert np.isclose(c.gamma0, 1.5)
        assert np.allclose(c.alpha, [2.0, -0.5])
        assert np.allclose(c.beta, [2.0, -1.0])

    def test_bdf3_constant(self):
        c = constant_step_coefficients(3)
        assert np.isclose(c.gamma0, 11.0 / 6.0)
        assert np.allclose(c.alpha, [3.0, -1.5, 1.0 / 3.0])
        assert np.allclose(c.beta, [3.0, -3.0, 1.0])

    @pytest.mark.parametrize("order", [1, 2, 3])
    @pytest.mark.parametrize("ratio", [0.5, 1.0, 1.7])
    def test_variable_step_exactness(self, order, ratio):
        """The BDF derivative must be exact for polynomials of degree <=
        order, and the extrapolation must reproduce them at t_{n+1}."""
        dt0 = 0.1
        dts = [dt0 * ratio**i for i in range(order)]
        c = bdf_coefficients(order, dts)
        rng = np.random.default_rng(order)
        coeffs = rng.standard_normal(order + 1)
        p = np.polynomial.Polynomial(coeffs)
        t_new = 0.0
        t_hist = [-np.sum(dts[: i + 1]) for i in range(order)]
        # derivative identity: (gamma0 p(0) - sum alpha_i p(t_i)) / dt0 = p'(0)
        lhs = (c.gamma0 * p(t_new) - sum(a * p(t) for a, t in zip(c.alpha, t_hist))) / dt0
        assert np.isclose(lhs, p.deriv()(t_new), rtol=1e-10)
        # extrapolation identity for degree <= order - 1
        q = np.polynomial.Polynomial(coeffs[:order])
        ext = sum(b * q(t) for b, t in zip(c.beta, t_hist))
        assert np.isclose(ext, q(t_new), rtol=1e-9)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            bdf_coefficients(4, [0.1] * 4)
        with pytest.raises(ValueError):
            bdf_coefficients(0, [])

    def test_missing_history(self):
        with pytest.raises(ValueError):
            bdf_coefficients(2, [0.1])

    def test_negative_dt(self):
        with pytest.raises(ValueError):
            bdf_coefficients(2, [0.1, -0.1])


class TestCFLController:
    def test_basic_scaling(self):
        ctl = CFLController(cfl=0.4, degree=3)
        dt = ctl.step_size(max_ref_velocity=10.0)
        assert np.isclose(dt, 0.4 / 3**1.5 / 10.0)

    def test_degree_exponent(self):
        """Eq. (6): dt ~ k^{-1.5}."""
        dt2 = CFLController(cfl=1.0, degree=2).step_size(1.0)
        dt8 = CFLController(cfl=1.0, degree=8).step_size(1.0)
        assert np.isclose(dt2 / dt8, (8 / 2) ** 1.5)

    def test_growth_limited(self):
        ctl = CFLController(cfl=1.0, degree=2, max_growth=1.2)
        dt = ctl.step_size(max_ref_velocity=0.001, dt_previous=0.01)
        assert np.isclose(dt, 0.012)

    def test_bounds(self):
        ctl = CFLController(cfl=1.0, degree=2, dt_min=1e-6, dt_max=0.1)
        assert ctl.step_size(1e12) == 1e-6
        assert ctl.step_size(0.0) == 0.1

    def test_adaptivity_reduces_step_count(self):
        """A velocity ramp with adaptive dt takes fewer steps than the
        worst-case fixed dt (the rationale for variable stepping)."""
        ctl = CFLController(cfl=0.5, degree=3)
        T = 1.0
        # velocity grows linearly in time: v(t) = 1 + 9 t
        t, steps_adaptive = 0.0, 0
        dt_prev = None
        while t < T:
            v = 1 + 9 * t
            dt = ctl.step_size(v, dt_prev)
            t += dt
            dt_prev = dt
            steps_adaptive += 1
        dt_fixed = ctl.step_size(10.0)  # worst case velocity
        steps_fixed = int(np.ceil(T / dt_fixed))
        assert steps_adaptive < steps_fixed
