"""Refinement-ladder rate gates (convergence tier — minutes, not seconds).

Run with ``pytest --run-convergence`` or ``pytest -m convergence``.

These are the acceptance gates of the verification subsystem: the DG
Poisson ladder must deliver L2 order k+1, the dual-splitting scheme
order 2 in dt, and — just as important — a deliberately broken operator
must FAIL the gate, proving the machinery can catch order-destroying
bugs (dropped face terms) and not merely bless whatever rate appears.
"""

import numpy as np
import pytest

from repro.core.operators import DGLaplaceOperator
from repro.verification import (
    ConvergenceFailure,
    assert_rate,
    beltrami_temporal_gate,
    poisson_spatial_ladder,
    womersley_temporal_ladder,
)

pytestmark = pytest.mark.convergence


class TestPoissonSpatialOrder:
    def test_k2_rate_is_cubic(self):
        study = poisson_spatial_ladder(degree=2, levels=(1, 2, 3))
        assert_rate(study)
        assert study.fitted_rate > 2.6

    def test_k3_rate_is_quartic(self):
        study = poisson_spatial_ladder(degree=3, levels=(1, 2))
        assert_rate(study)
        assert study.fitted_rate > 3.6


class _LaplaceWithoutConsistencyTerms(DGLaplaceOperator):
    """Injected bug: the SIP interior face flux with the consistency and
    adjoint-consistency terms dropped — only the jump penalty survives.
    This is exactly the class of bug (a lost face-integral term) the
    rate gate exists to catch: the operator stays symmetric positive
    definite and produces plausible-looking solutions, but the scheme is
    inconsistent and the L2 order collapses."""

    def _face_flux(self, fm, tau, vm, Gm, vp, Gp):
        jump = vm - vp
        w = fm.jxw
        rv_m = (tau[:, None, None] * jump) * w
        rv_p = (-tau[:, None, None] * jump) * w
        rg = np.zeros_like(fm.normal * w[:, None])
        return rv_m, rg, rv_p, rg


class TestGateCatchesInjectedBug:
    def test_dropped_face_terms_fail_the_gate(self):
        study = poisson_spatial_ladder(
            degree=2,
            levels=(1, 2, 3),
            operator_cls=_LaplaceWithoutConsistencyTerms,
            preconditioner="inverse_mass",
        )
        with pytest.raises(ConvergenceFailure) as exc:
            assert_rate(study)
        assert "poisson_dg_k2" in str(exc.value)
        # the healthy operator clears 2.6 (see above); the broken one
        # must land far below it, not just graze the tolerance
        assert study.fitted_rate < 2.0


class TestTemporalOrder:
    def test_dual_splitting_beltrami_is_second_order(self):
        study = beltrami_temporal_gate()
        assert_rate(study)
        # the dt^2 signal must dominate the spatial floor: errors keep
        # falling at the finest step instead of flattening out
        assert study.pairwise[-1] > 1.6

    def test_dual_splitting_womersley_is_second_order(self):
        study = womersley_temporal_ladder()
        assert_rate(study)


@pytest.mark.nightly
class TestNightlyDeepLadders:
    """Deeper, slower ladders than the convergence tier affords —
    scheduled CI only (``--run-nightly``)."""

    def test_poisson_k3_three_level_ladder(self):
        study = poisson_spatial_ladder(degree=3, levels=(1, 2, 3))
        assert_rate(study)
        assert study.fitted_rate > 3.6

    def test_beltrami_gate_extended_ladder(self):
        study = beltrami_temporal_gate(steps=(16, 32, 64, 128))
        assert_rate(study)
