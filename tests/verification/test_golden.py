"""Golden-file regression: comparison semantics (fast) and the real
recompute-vs-committed check (convergence tier)."""

import json
from pathlib import Path

import pytest

from repro.verification import (
    GOLDEN_SCHEMA,
    compare_golden,
    compute_golden_metrics,
    load_golden,
    write_golden,
)

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "verification.json"


def _doc(metrics):
    return {"schema": GOLDEN_SCHEMA, "metrics": metrics}


class TestCompareGolden:
    def test_identical_metrics_pass(self):
        m = {"a": {"value": 1.25, "rtol": 1e-6}}
        assert compare_golden(m, _doc(m)) == []

    def test_within_tolerance_passes(self):
        golden = {"a": {"value": 1.0, "rtol": 1e-2}}
        assert compare_golden({"a": {"value": 1.005}}, _doc(golden)) == []

    def test_drift_beyond_tolerance_reported(self):
        golden = {"a": {"value": 1.0, "rtol": 1e-4}}
        problems = compare_golden({"a": {"value": 1.01}}, _doc(golden))
        assert len(problems) == 1 and "a" in problems[0]
        assert "rtol" in problems[0]

    def test_list_metrics_use_atol(self):
        golden = {"iters": {"value": [10, 11, 12], "atol": 2}}
        assert compare_golden({"iters": {"value": [11, 12, 13]}}, _doc(golden)) == []
        problems = compare_golden({"iters": {"value": [14, 11, 12]}}, _doc(golden))
        assert len(problems) == 1

    def test_shape_mismatch_reported(self):
        golden = {"iters": {"value": [10, 11], "atol": 2}}
        problems = compare_golden({"iters": {"value": [10, 11, 12]}}, _doc(golden))
        assert "shape" in problems[0]

    def test_missing_and_extra_metrics_reported(self):
        golden = {"only_golden": {"value": 1.0, "rtol": 1e-6}}
        problems = compare_golden({"only_computed": {"value": 2.0}}, _doc(golden))
        assert len(problems) == 2
        assert any("not computed" in p for p in problems)
        assert any("--update-golden" in p for p in problems)

    def test_unknown_schema_rejected(self):
        problems = compare_golden({}, {"schema": "bogus/9", "metrics": {}})
        assert len(problems) == 1 and "schema" in problems[0]


class TestGoldenIo:
    def test_write_load_round_trip(self, tmp_path):
        metrics = {"a": {"value": [1.0, 2.0], "atol": 1}}
        path = write_golden(tmp_path / "sub" / "golden.json", metrics)
        doc = load_golden(path)
        assert doc["schema"] == GOLDEN_SCHEMA
        assert compare_golden(metrics, doc) == []

    def test_committed_file_is_valid(self):
        # the committed snapshot must parse and carry the right schema
        doc = load_golden(GOLDEN_PATH)
        assert doc["schema"] == GOLDEN_SCHEMA
        assert "poisson_k2_l1_error_l2" in doc["metrics"]
        assert "beltrami_k2_error_l2" in doc["metrics"]
        # tolerances must be tight enough to mean something
        for name, entry in doc["metrics"].items():
            assert "value" in entry, name
            assert entry.get("rtol", 0.0) <= 1e-1 and entry.get("atol", 0) <= 4


@pytest.mark.convergence
class TestGoldenRegression:
    def test_recompute_matches_committed(self):
        """The real regression gate: rerun the committed cases and demand
        bit-compatible-within-tolerance agreement."""
        problems = compare_golden(compute_golden_metrics(), load_golden(GOLDEN_PATH))
        assert problems == [], "\n".join(problems)

    def test_perturbation_detected(self):
        """compare_golden must catch a metric drifting beyond tolerance."""
        doc = json.loads(GOLDEN_PATH.read_text())
        name = "beltrami_k2_error_l2"
        entry = doc["metrics"][name]
        entry["value"] *= 1.0 + 10.0 * entry["rtol"]
        computed = compute_golden_metrics()
        assert any(name in p for p in compare_golden(computed, doc))
