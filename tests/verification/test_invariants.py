"""Property-based operator invariants on randomized curved meshes.

Each test draws a deformed mesh (tapered cylinder, randomized
bifurcation, or a hanging-node box) and random probe vectors from the
seeded per-test ``rng`` fixture, then asserts a structural identity of
the matrix-free operators.  A failure reproduces deterministically.
"""

import numpy as np
import pytest

from repro.core.dof_handler import DGDofHandler
from repro.core.operators import (
    DGLaplaceOperator,
    DivergenceContinuityPenalty,
    MassOperator,
)
from repro.core.operators.grad_div import DivergenceOperator, GradientOperator
from repro.mesh.connectivity import build_connectivity
from repro.mesh.mapping import GeometryField
from repro.ns.bc import BoundaryConditions, VelocityDirichlet
from repro.verification import (
    InvariantViolation,
    check_adjoint,
    check_nullspace,
    check_plan_equivalence,
    check_positive_semidefinite,
    check_symmetry,
    random_curved_forest,
)

DEGREE = 2


@pytest.fixture
def space(rng):
    """A randomized curved mesh with its geometry/connectivity/DoF stack."""
    forest = random_curved_forest(rng)
    geo = GeometryField(forest, DEGREE)
    conn = build_connectivity(forest)
    dof = DGDofHandler(forest, DEGREE)
    return forest, geo, conn, dof


class TestLaplaceInvariants:
    def test_sip_laplacian_is_symmetric(self, rng, space):
        _, geo, conn, dof = space
        op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
        check_symmetry(op, rng)

    def test_neumann_laplacian_annihilates_constants(self, rng, space):
        _, geo, conn, dof = space
        op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=())
        check_nullspace(op, np.ones(op.n_dofs), atol=1e-8)

    def test_dirichlet_laplacian_keeps_constants(self, rng, space):
        # with a Dirichlet boundary the constant mode must NOT be in the
        # null space — the boundary penalty sees it
        _, geo, conn, dof = space
        op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
        with pytest.raises(InvariantViolation):
            check_nullspace(op, np.ones(op.n_dofs), atol=1e-8)

    def test_sip_laplacian_positive_semidefinite(self, rng, space):
        _, geo, conn, dof = space
        op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
        check_positive_semidefinite(op, rng, tol=1e-9)

    def test_plan_equivalence(self, rng, space):
        _, geo, conn, dof = space
        op = DGLaplaceOperator(dof, geo, conn, dirichlet_ids=(1,))
        check_plan_equivalence(op, rng)


class TestMassInvariants:
    def test_mass_symmetric_and_spd(self, rng, space):
        _, geo, _, dof = space
        op = MassOperator(dof, geo)
        check_symmetry(op, rng)
        check_positive_semidefinite(op, rng, tol=0.0)


class TestMixedSpaceInvariants:
    @pytest.fixture
    def mixed(self, space):
        forest, geo, conn, _ = space
        dof_u = DGDofHandler(forest, DEGREE, n_components=3)
        dof_p = DGDofHandler(forest, DEGREE - 1)
        present = {b.boundary_id for b in conn.boundary}
        bcs = BoundaryConditions(
            {bid: VelocityDirichlet.no_slip() for bid in present}
        )
        div = DivergenceOperator(dof_u, dof_p, geo, conn, bcs)
        grad = GradientOperator(dof_u, dof_p, geo, conn, bcs)
        return dof_u, dof_p, div, grad

    def test_divergence_is_negative_gradient_transpose(self, rng, mixed):
        dof_u, dof_p, div, grad = mixed
        check_adjoint(
            div.vmult, grad.vmult, dof_u.n_dofs, dof_p.n_dofs, rng,
            sign=-1.0, label="div vs grad",
        )

    def test_divergence_plan_equivalence(self, rng, mixed):
        dof_u, _, div, _ = mixed
        check_plan_equivalence(div, rng, n_in=dof_u.n_dofs)


class TestPenaltyInvariants:
    def test_penalty_symmetric_positive_semidefinite(self, rng, space):
        forest, geo, conn, _ = space
        dof_u = DGDofHandler(forest, DEGREE, n_components=3)
        pen = DivergenceContinuityPenalty(dof_u, geo, conn)
        pen.update_parameters(rng.standard_normal(dof_u.n_dofs))
        check_symmetry(pen, rng, rtol=1e-8)
        check_positive_semidefinite(pen, rng, tol=1e-10)


class TestHarnessCatchesViolations:
    """The checks themselves must fail on operators that break the
    identity — otherwise the suite only proves it can pass."""

    class _Asymmetric:
        n_dofs = 8

        def vmult(self, x):
            out = np.roll(x, 1)
            out[0] += 0.5 * x[0]
            return out

    class _Indefinite:
        n_dofs = 8

        def vmult(self, x):
            return -x

    def test_symmetry_check_rejects_asymmetric(self, rng):
        with pytest.raises(InvariantViolation, match="symmetry"):
            check_symmetry(self._Asymmetric(), rng)

    def test_psd_check_rejects_indefinite(self, rng):
        with pytest.raises(InvariantViolation, match="Rayleigh"):
            check_positive_semidefinite(self._Indefinite(), rng)
