"""Unit tests of the manufactured-solution machinery (no ladders here —
the expensive refinement studies live in test_convergence_gates.py)."""

import numpy as np
import pytest

from repro.ns.analytic import BeltramiFlow, StokesDecayFlow
from repro.verification.mms import (
    fd_negative_laplacian,
    navier_stokes_body_force,
    resolve_body_force,
)


class TestFdNegativeLaplacian:
    def test_matches_analytic_laplacian(self, rng):
        # u = sin(pi x) sin(pi y) sin(pi z)  ->  -lap u = 3 pi^2 u
        u = lambda x, y, z: np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
        f = fd_negative_laplacian(u)
        pts = rng.uniform(0.1, 0.9, size=(3, 16))
        got = f(*pts)
        want = 3.0 * np.pi**2 * u(*pts)
        assert np.allclose(got, want, rtol=1e-6)

    def test_quadratic_is_exact(self):
        # central second differences are exact on polynomials of degree 2
        u = lambda x, y, z: x**2 + 2.0 * y**2 - z**2 + x * y
        f = fd_negative_laplacian(u)
        assert f(0.3, 0.4, 0.5) == pytest.approx(-2.0 * (1.0 + 2.0 - 1.0), abs=1e-6)


class TestNavierStokesBodyForce:
    def test_exact_solution_has_zero_residual(self, rng):
        # Beltrami solves the homogeneous equations: the FD residual is
        # pure truncation noise
        flow = BeltramiFlow(nu=0.1)
        force = navier_stokes_body_force(flow, nu=0.1)
        pts = rng.uniform(-0.4, 0.4, size=(3, 8))
        f = force(*pts, 0.3)
        assert np.abs(f).max() < 1e-6

    def test_stokes_decay_residual_vanishes(self, rng):
        flow = StokesDecayFlow(nu=0.05)
        force = navier_stokes_body_force(flow, nu=0.05)
        pts = rng.uniform(-0.4, 0.4, size=(3, 8))
        assert np.abs(force(*pts, 0.1)).max() < 1e-6

    def test_wrong_viscosity_leaves_residual(self, rng):
        # f = (nu_true - nu_wrong) * lap u != 0: the FD residual really
        # measures the equations, not just smoothness
        flow = BeltramiFlow(nu=0.1)
        force = navier_stokes_body_force(flow, nu=0.4)
        pts = rng.uniform(-0.4, 0.4, size=(3, 8))
        assert np.abs(force(*pts, 0.3)).max() > 1e-2

    def test_manufactured_forcing_recovers_momentum_balance(self):
        # manufactured field u = (sin(pi y), 0, 0), p = 0:
        # f = du/dt + 0 - nu lap u = nu pi^2 sin(pi y)
        class Shear:
            def velocity(self, x, y, z, t):
                zero = np.zeros_like(np.asarray(y, float))
                return np.stack([np.sin(np.pi * y), zero, zero])

        force = navier_stokes_body_force(Shear(), nu=0.2)
        y = np.array([0.25, 0.5])
        f = force(np.zeros(2), y, np.zeros(2), 0.0)
        assert np.allclose(f[0], 0.2 * np.pi**2 * np.sin(np.pi * y), rtol=1e-5)
        assert np.allclose(f[1:], 0.0, atol=1e-8)


class TestResolveBodyForce:
    class _WithHook:
        def body_force(self, x, y, z, t):
            return np.zeros((3,) + np.shape(x))

        def velocity(self, x, y, z, t):
            return np.zeros((3,) + np.shape(x))

    def test_auto_prefers_solution_hook(self):
        sol = self._WithHook()
        assert resolve_body_force(sol, 0.1, "auto") == sol.body_force

    def test_auto_falls_back_to_fd_residual(self):
        flow = BeltramiFlow(nu=0.1)
        force = resolve_body_force(flow, 0.1, "auto")
        assert force is not None
        assert np.abs(force(0.1, 0.2, 0.3, 0.0)).max() < 1e-6

    def test_none_policy(self):
        assert resolve_body_force(BeltramiFlow(nu=0.1), 0.1, "none") is None

    def test_callable_passes_through(self):
        fn = lambda x, y, z, t: np.zeros((3,) + np.shape(x))
        assert resolve_body_force(BeltramiFlow(nu=0.1), 0.1, fn) is fn

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="body_force"):
            resolve_body_force(BeltramiFlow(nu=0.1), 0.1, "bogus")
