"""Tests of the convergence-rate machinery (fitting, gates, reports)."""

import json

import numpy as np
import pytest

from repro.verification import (
    RATE_SCHEMA,
    ConvergenceFailure,
    RefinementStudy,
    assert_rate,
    fit_rate,
    pairwise_rates,
    rate_table_doc,
    render_rate_table,
    write_rate_log,
)


def synthetic_study(rate, sizes=(0.5, 0.25, 0.125), expected=3.0, c=2.0):
    sizes = np.asarray(sizes)
    return RefinementStudy(
        name=f"synthetic_p{rate}",
        parameter="h",
        sizes=list(sizes),
        errors=list(c * sizes**rate),
        expected_rate=expected,
    )


class TestFitRate:
    def test_exact_power_law(self):
        h = np.array([0.4, 0.2, 0.1, 0.05])
        assert fit_rate(h, 3.0 * h**2.5) == pytest.approx(2.5)

    def test_pairwise_rates(self):
        h = [0.5, 0.25, 0.125]
        rates = pairwise_rates(h, [8.0, 1.0, 0.125])
        assert rates == pytest.approx([3.0, 3.0])

    def test_noisy_data_least_squares(self, rng):
        h = np.array([0.5, 0.25, 0.125, 0.0625])
        noise = np.exp(rng.uniform(-0.05, 0.05, size=h.size))
        assert fit_rate(h, h**4 * noise) == pytest.approx(4.0, abs=0.15)

    def test_zero_error_returns_inf(self):
        # an identically-zero error column means "already exact"
        assert fit_rate([0.5, 0.25], [1e-3, 0.0]) == np.inf

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_rate([0.5, 0.25], [1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_rate([0.5], [1.0])


class TestAssertRate:
    def test_passes_at_expected_order(self):
        assert_rate(synthetic_study(3.0))

    def test_superconvergence_passes(self):
        assert_rate(synthetic_study(4.0, expected=3.0))

    def test_catches_order_loss(self):
        # a first-order ladder must not satisfy a third-order gate —
        # this is the contract that catches dropped operator terms
        with pytest.raises(ConvergenceFailure) as exc:
            assert_rate(synthetic_study(1.0, expected=3.0))
        msg = str(exc.value)
        assert "synthetic_p1.0" in msg
        assert "expected" in msg and "fitted" in msg

    def test_tolerance_is_one_sided(self):
        study = synthetic_study(2.7, expected=3.0)
        assert_rate(study, tolerance=0.4)
        with pytest.raises(ConvergenceFailure):
            assert_rate(study, tolerance=0.2)

    def test_study_passed_matches_assert(self):
        good, bad = synthetic_study(3.0), synthetic_study(1.5)
        assert good.passed(0.4) and not bad.passed(0.4)


class TestReport:
    def test_rate_table_doc_schema(self):
        doc = rate_table_doc([synthetic_study(3.0), synthetic_study(1.0)])
        assert doc["schema"] == RATE_SCHEMA
        assert doc["all_passed"] is False
        assert [e["passed"] for e in doc["studies"]] == [True, False]
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_markdown_table(self):
        md = render_rate_table([synthetic_study(3.0)])
        assert "| study | parameter | expected | fitted | status |" in md
        assert "synthetic_p3.0" in md
        assert "pass" in md
        assert "observed rate" in md

    def test_markdown_flags_failures(self):
        md = render_rate_table([synthetic_study(1.0)])
        assert "**FAIL**" in md

    def test_jsonl_rate_log_round_trip(self, tmp_path):
        path = tmp_path / "rates.jsonl"
        write_rate_log(path, [synthetic_study(3.0)], meta={"command": "test"})
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert lines[0]["schema"] == RATE_SCHEMA
        assert lines[0]["command"] == "test"
        assert lines[1]["type"] == "study"
        assert lines[1]["fitted_rate"] == pytest.approx(3.0)
        assert lines[-1] == {
            "type": "summary", "n_studies": 1, "tolerance": 0.4,
            "all_passed": True,
        }
